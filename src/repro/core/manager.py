"""The GMR manager (Sec. 4): keeping materialized results consistent.

All GMR extensions are maintained by this manager.  It owns the Reverse
Reference Relation, the SchemaDepFct dependency index, the CA table of
compensating actions, and implements the paper's maintenance algorithms:

* ``invalidate(o, fcts)`` — the lazy / immediate rematerialization
  algorithms of Sec. 4.1 (triggered by the rewritten update operations);
* ``new_object(o, t)`` / ``forget_object(o)`` — extension adaptation on
  argument-object creation/deletion (Sec. 4.2), with the paper's lazy
  *blind reference* cleanup;
* ``compensate(...)`` — compensating actions (Sec. 5.4), applied before
  the update executes;
* restriction-predicate maintenance (Sec. 6.1) — predicates are
  materialized like Boolean functions under a pseudo function id;
* retrieval — forward lookups (including the mapping of materialized
  function invocations onto GMR probes) and validity-completing backward
  range queries.
"""

from __future__ import annotations

import threading
import time
import warnings
from contextlib import nullcontext
from dataclasses import dataclass, fields as dataclass_fields
from itertools import product
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.concurrency.sharding import ShardCommitConflict, shard_of
from repro.util.interning import interned_shard_of

from repro.core.batch import (
    CreateEvent,
    FlushReport,
    ForgetEvent,
    InvalidationEvent,
    InvalidationQueue,
    UpdateBatch,
)
from repro.core.breaker import CircuitBreaker
from repro.core.compensation import CompensatingAction, CompensationTable
from repro.core.delta import AggregateSpec, DeltaEngine, DeltaSpec
from repro.core.dependencies import DependencyIndex, FidPlan, UpdatePlan
from repro.core.function_registry import FunctionInfo, function_id
from repro.core.gmr import GMR
from repro.core.guard import ExecutionGuard, FaultPolicy
from repro.core.restricted import RestrictionSpec, validate_atomic_restrictions
from repro.core.rrr import ReverseReferenceRelation
from repro.core.scheduler import RevalidationScheduler
from repro.core.strategies import Strategy
from repro.errors import (
    CompensationError,
    FunctionExecutionError,
    FunctionQuarantinedError,
    FunctionTimeoutError,
    GMRDefinitionError,
    SchemaError,
)
from repro.gom.oid import Oid
from repro.gom.types import is_atomic_type
from repro.observe.explain import (
    FORGET_KEY,
    ExplainReport,
    WaveExplain,
    build_explain,
    new_tally,
)
from repro.observe.metrics import (
    PROBE_FANOUT_BUCKETS,
    QUEUE_DEPTH_BUCKETS,
    REMAT_LATENCY_BUCKETS,
    WAVE_WIDTH_BUCKETS,
    install_stats_views,
)
from repro.predicates.ast import all_variables
from repro.storage.gmr_store import in_range

if TYPE_CHECKING:  # pragma: no cover
    from repro.gom.database import ObjectBase


FunctionSpec = "str | tuple[str, str] | FunctionInfo"


@dataclass
class ManagerStats:
    """Operational counters of the GMR manager.

    Useful for tests, benchmarks and production observability: the
    paper's cost arguments (e.g. "12 invalidations per scale", "lazy
    defers recomputation") become directly measurable.
    """

    forward_hits: int = 0
    forward_computes: int = 0
    invalidate_calls: int = 0
    entries_invalidated: int = 0
    rematerializations: int = 0
    compensations: int = 0
    predicate_evaluations: int = 0
    rows_created: int = 0
    rows_removed: int = 0
    blind_rows_removed: int = 0
    #: Update notifications absorbed by an open batch instead of being
    #: processed eagerly (the batching pipeline's input volume).
    batched_invalidations: int = 0
    #: RRR probes avoided by batching: notifications that coalesced into
    #: an already pending event (or folded into a forget) and therefore
    #: never performed their own probe.
    rrr_probes_saved: int = 0
    #: Batch flushes performed (including query-forced mid-batch ones).
    batch_flushes: int = 0
    #: Entries rematerialized by the revalidation scheduler's drain.
    scheduler_revalidations: int = 0
    #: Rematerializations that failed under the execution guard (raised
    #: or overran the call budget) and demoted entries to ERROR.
    guard_failures: int = 0
    #: The subset of ``guard_failures`` that were budget overruns.
    guard_timeouts: int = 0
    #: Bounded retries handed to the scheduler's backoff queue.
    retries_scheduled: int = 0
    #: Entries abandoned after ``FaultPolicy.max_attempts`` failures.
    retries_exhausted: int = 0
    #: Entries healed by a scheduled retry after at least one failure.
    retry_successes: int = 0
    #: Circuit-breaker openings (threshold reached or probe failed).
    breaker_opens: int = 0
    #: Breakers closed by a successful half-open probe.
    breaker_closes: int = 0
    #: Half-open probes admitted by an open breaker past its cooldown.
    breaker_half_opens: int = 0
    #: Forward queries answered by direct evaluation because the
    #: function was quarantined (Sec. 3.2 pass-through).
    degraded_forward_calls: int = 0
    #: GMR entries patched in place by the delta maintenance engine
    #: (``maintenance="delta"``): handler results and O(delta)
    #: aggregate updates that replaced an invalidate-then-recompute.
    delta_patches: int = 0
    #: Delete/Rederive forward re-derivations: aggregate patches whose
    #: support ran out and rebuilt the result from remaining members.
    delta_rederivations: int = 0
    #: Delta patches discarded (moved write epoch, exhausted support,
    #: raising handler, ERROR entry) — the entry fell back down the
    #: maintenance lattice to the ordinary invalidation wave.
    delta_fallbacks: int = 0

    def snapshot(self) -> "ManagerStats":
        cls = type(self)
        return cls(
            **{
                spec.name: getattr(self, spec.name)
                for spec in dataclass_fields(self)
            }
        )

    def delta(self, earlier: "ManagerStats") -> "ManagerStats":
        # Field-introspective on purpose: a counter added after
        # ``earlier`` was created (schema evolution across checkpoints,
        # subclassed stats) must not silently drop out of the delta —
        # missing fields on ``earlier`` count from zero.
        cls = type(self)
        return cls(
            **{
                spec.name: getattr(self, spec.name)
                - getattr(earlier, spec.name, 0)
                for spec in dataclass_fields(self)
            }
        )


class _MultiLock:
    """Hold a fixed tuple of locks, acquired ascending, released
    descending — the all-shards context of engine-wide sweeps.  The
    ascending order is the same everywhere (here and in
    ``ObjectBase._freeze``), which keeps multi-shard acquisition
    deadlock-free."""

    __slots__ = ("_locks",)

    def __init__(self, locks: tuple) -> None:
        self._locks = locks

    def __enter__(self) -> "_MultiLock":
        for lock in self._locks:
            lock.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        for lock in reversed(self._locks):
            lock.release()


class GMRManager:
    """Maintains every GMR extension of one object base."""

    def __init__(self, db: "ObjectBase") -> None:
        self._db = db
        self._gmrs: dict[str, GMR] = {}
        self._gmr_of_fid: dict[str, GMR] = {}
        self._op_dispatch: dict[tuple[str, str], str] = {}
        self._deps = DependencyIndex()
        # -- precompiled invalidation plans ----------------------------
        #: Gate for the plan caches below.  Read from
        #: ``config.invalidation_plans`` here and refreshed by
        #: :meth:`invalidate_plans`; ``False`` keeps the per-update
        #: SchemaDepFct scan (the pre-plan baseline).
        self._plans_on = db.config.invalidation_plans
        #: ``fid -> FidPlan`` (``None`` = fid has no GMR), compiled
        #: lazily; consulted once per fid per wave.
        self._fid_plans: dict[str, FidPlan | None] = {}
        #: ``(decl_type, attr) -> UpdatePlan`` — the flattened
        #: SchemaDepFct lookup used by the elementary-update hot path.
        self._update_plans: dict[tuple[str, str], UpdatePlan] = {}
        #: Dependency-index version the caches were compiled against.
        self._plan_epoch = 0
        self._rrr = ReverseReferenceRelation(db.page_store, db.buffer)
        self._ca = CompensationTable()
        #: The generalized incremental maintenance engine (delta
        #: patches + self-maintainable aggregates); its registry is
        #: populated by :meth:`register_delta` and — via the
        #: deprecation shim — :meth:`register_compensation`.  Which
        #: engine actually runs on an update is decided per call by
        #: ``config.maintenance`` (see :meth:`compensate`).
        self._delta = DeltaEngine(self)
        self.stats = ManagerStats()
        #: Injectable time source: guard budgets, backoff deadlines and
        #: breaker cooldowns all read this one clock (tests swap it).
        self.clock: Callable[[], float] = time.monotonic
        self.guard = ExecutionGuard(self.fault_policy, clock=self._now)
        self.breaker = CircuitBreaker(self.fault_policy, clock=self._now)
        self.scheduler = RevalidationScheduler(self)
        #: One scheduler per shard (sharded engines); ``schedulers[0]``
        #: is always :attr:`scheduler`, so unsharded bases see exactly
        #: one object and no new allocations.  All shards share *one*
        #: ``query_frequency`` dict — query heat is a property of the
        #: function, not of the shard that owns an argument tuple.
        self._shards = db.config.shards
        if self._shards > 1:
            extra = []
            for _ in range(self._shards - 1):
                sibling = RevalidationScheduler(self)
                sibling.query_frequency = self.scheduler.query_frequency
                extra.append(sibling)
            self.schedulers: tuple[RevalidationScheduler, ...] = (
                self.scheduler,
                *extra,
            )
        else:
            self.schedulers = (self.scheduler,)
        #: Per-shard drain gates (the *same* objects as
        #: ``db._shard_locks``); ``None`` unsharded.
        self._shard_locks = db._shard_locks
        #: Leaf latch for RRR/ObjDepFct mutations.  Sharded drains run
        #: outside the global update lock, so the dict-of-sets behind
        #: the RRR needs its own structural serialization; unsharded
        #: this is a shared no-op context (the global lock or the
        #: single thread already serializes).
        self._rrr_latch: Any = (
            threading.Lock() if self._shards > 1 else nullcontext()
        )
        #: Per-thread marker set by a scheduler drain for its duration;
        #: gates the write-epoch conflict protocol in
        #: :meth:`_rematerialize_impl` (foreground remats hold the
        #: global update lock and skip it).
        self._drain_flag = threading.local()
        self._queue = InvalidationQueue()
        self._batch_depth = 0
        self._flushing = False
        #: RRR maintenance policy (Sec. 4.1): ``"remove"`` removes entries
        #: in step 1 of the invalidation algorithms and lets the
        #: rematerialization re-insert them; ``"second_chance"`` marks
        #: them instead and removes only entries still marked at the next
        #: invalidation (the paper's proposed alternative).
        self.rrr_policy = "remove"

        # -- concurrency wiring (see repro.concurrency) ----------------
        #: True when the object base runs a revalidation worker pool
        #: (``config.workers > 0``) or a sharded engine (``shards >
        #: 1``); gates the multi-threaded code paths so ``workers=0,
        #: shards=1`` keeps today's sequence bit-for-bit.
        self._mt = db.config.workers > 0 or db.config.shards > 1
        #: The object base's update lock — the *same* object as
        #: ``db._update_lock`` (an RLock in MT mode, a shared
        #: ``nullcontext`` otherwise), so maintenance entered from a
        #: locked update path nests reentrantly.
        self._maint_lock = db._update_lock
        #: Striped per-entry lock table shared by every GMR store
        #: (attached in :meth:`materialize`); ``None`` single-threaded.
        self._entry_locks = None
        if self._mt:
            from repro.concurrency.locks import StripedRWLock

            self._entry_locks = StripedRWLock(64)

        # -- observability wiring (see repro.observe) ------------------
        observe = db.observe
        self.tracer = observe.tracer
        self.metrics = observe.metrics
        #: Fast-path gate: False (metrics disabled) skips all tallies,
        #: wave records and row notes — the pre-observability baseline.
        self._obs_on = observe.metrics.enabled
        #: Per-fid maintenance tallies feeding :meth:`explain`.  They are
        #: incremented by the same helpers as the registry counters, so
        #: the EXPLAIN totals equal the counters by construction.
        self.fid_tallies: dict[str, dict[str, int]] = {}
        #: The last invalidation wave processed (``None`` until one ran).
        self.last_wave: WaveExplain | None = None
        #: ``(fid, args) -> why`` — the last maintenance action per GMR
        #: entry, rendered by :meth:`explain`.
        self._row_notes: dict[tuple[str, tuple], str] = {}
        registry = observe.metrics
        self._m_probes = registry.counter("rrr.probes")
        self._m_probe_entries = registry.counter("rrr.probe_entries")
        self._m_probe_fanout = registry.histogram(
            "rrr.probe_fanout", PROBE_FANOUT_BUCKETS
        )
        self._m_waves = registry.counter("wave.count")
        self._m_wave_width = registry.histogram(
            "wave.width", WAVE_WIDTH_BUCKETS
        )
        self._m_remats = registry.counter("remat.count")
        self._m_remat_latency = registry.histogram(
            "remat.latency", REMAT_LATENCY_BUCKETS
        )
        self._m_compensations = registry.counter("compensation.count")
        self._m_delta_patches = registry.counter("maintenance.delta_patches")
        self._m_delta_fallbacks = registry.counter("maintenance.fallbacks")
        self._m_guard_failures = registry.counter("guard.failures")
        self._m_breaker_transitions = registry.counter("breaker.transitions")
        self._m_queue_depth = registry.gauge("scheduler.queue_depth")
        self._m_queue_depth_hist = registry.histogram(
            "scheduler.queue_depth_hist", QUEUE_DEPTH_BUCKETS
        )
        install_stats_views(registry, self.stats)
        if self._obs_on:
            self.guard.observer = self._on_guard_timing
        self.breaker.on_transition = self._on_breaker_transition

    def _now(self) -> float:
        return self.clock()

    # ------------------------------------------------------------------
    # Shard routing
    # ------------------------------------------------------------------

    def _scheduler_for(self, args: tuple) -> RevalidationScheduler:
        """The scheduler owning ``args``' shard (Sec. 4.1 decoupling,
        partitioned): every schedule/retry of an entry lands on the
        queue its shard's worker slice drains."""
        schedulers = self.schedulers
        if len(schedulers) == 1:
            return self.scheduler
        # interned_shard_of == shard_of with the CRC cached per tuple.
        return schedulers[interned_shard_of(args, self._shards)]

    def scheduler_pending_for(self, fid: str) -> int:
        """Queued entries of ``fid`` summed across every shard."""
        return sum(s.pending_for(fid) for s in self.schedulers)

    def _all_shards(self) -> Any:
        """A context holding every shard lock (ascending); a shared
        no-op unsharded.  Engine-wide sweeps take it *inside* the
        maintenance lock so no shard drain runs while they rewrite
        cross-shard state."""
        locks = self._shard_locks
        if locks is None:
            return nullcontext()
        return _MultiLock(locks)

    def dump_scheduler_state(self) -> dict:
        """One portable queue snapshot covering every shard.

        Unsharded this is exactly ``scheduler.dump_state()`` (identical
        output, so checkpoints stay byte-compatible).  Sharded, the
        per-shard snapshots are merged into a single deterministic
        stream — entries sorted by (priority, seq, shard) and
        re-sequenced — so a checkpoint written at ``shards=N`` restores
        into any shard count (routing is a pure function of the args).
        """
        if len(self.schedulers) == 1:
            return self.scheduler.dump_state()
        heap: list[list] = []
        delayed: list[list] = []
        attempts: list[list] = []
        seq_high = 0
        for shard, scheduler in enumerate(self.schedulers):
            state = scheduler.dump_state()
            heap.extend([*entry, shard] for entry in state["heap"])
            delayed.extend([*entry, shard] for entry in state["delayed"])
            attempts.extend(state["attempts"])
            seq_high = max(seq_high, state["seq"])
        heap.sort(key=lambda e: (e[0], e[1], e[4]))
        delayed.sort(key=lambda e: (e[0], e[1], e[4]))
        heap = [
            [priority, index, fid, args]
            for index, (priority, _, fid, args, _) in enumerate(heap)
        ]
        delayed = [
            [remaining, index, fid, args]
            for index, (remaining, _, fid, args, _) in enumerate(delayed)
        ]
        attempts.sort(key=lambda e: (e[0], repr(e[1])))
        return {
            "heap": heap,
            "delayed": delayed,
            "attempts": attempts,
            "seq": max(seq_high, len(heap) + len(delayed)),
            "frequency": dict(self.scheduler.query_frequency),
        }

    def restore_scheduler_state(self, state: dict) -> None:
        """Restore a :meth:`dump_scheduler_state` snapshot, splitting
        the merged stream back onto the owning shards' schedulers."""
        if len(self.schedulers) == 1:
            self.scheduler.restore_state(state)
            return
        shards = self._shards
        parts: list[dict] = [
            {
                "heap": [],
                "delayed": [],
                "attempts": [],
                "seq": state.get("seq", 0),
                "frequency": dict(state.get("frequency", {})),
            }
            for _ in range(shards)
        ]
        for entry in state.get("heap", []):
            parts[shard_of(tuple(entry[3]), shards)]["heap"].append(entry)
        for entry in state.get("delayed", []):
            parts[shard_of(tuple(entry[3]), shards)]["delayed"].append(entry)
        for entry in state.get("attempts", []):
            parts[shard_of(tuple(entry[1]), shards)]["attempts"].append(entry)
        for scheduler, part in zip(self.schedulers, parts):
            scheduler.restore_state(part)
        # ``restore_state`` replaces each query_frequency dict; re-share
        # shard 0's so ``note_query`` heat stays visible to every shard.
        shared = self.scheduler.query_frequency
        for scheduler in self.schedulers[1:]:
            scheduler.query_frequency = shared

    # ------------------------------------------------------------------
    # Observability (tracing, metrics, EXPLAIN)
    # ------------------------------------------------------------------

    @property
    def fault_policy(self) -> FaultPolicy:
        """Fault-tolerance knobs; owned by ``db.config.fault_policy``
        (mutate the policy in place, or pass one to
        :class:`~repro.observe.config.MaterializationConfig`)."""
        return self._db.config.fault_policy

    @fault_policy.setter
    def fault_policy(self, policy: FaultPolicy) -> None:
        warnings.warn(
            "assigning manager.fault_policy is deprecated; pass "
            "MaterializationConfig(fault_policy=...) to ObjectBase or "
            "mutate db.config.fault_policy in place",
            DeprecationWarning,
            stacklevel=2,
        )
        self._db.config.fault_policy = policy
        self.guard.policy = policy
        self.breaker.policy = policy

    def _tally(self, fid: str) -> dict[str, int]:
        tally = self.fid_tallies.get(fid)
        if tally is None:
            tally = self.fid_tallies[fid] = new_tally()
        return tally

    def _obs_probe(self, fid: str, fanout: int) -> None:
        """Account one RRR probe for ``fid`` that popped/marked
        ``fanout`` entries.  The single funnel for probe accounting:
        registry counters and the EXPLAIN tally move together here."""
        if not self._obs_on:
            return
        self._m_probes.inc()
        self._m_probe_entries.inc(fanout)
        self._m_probe_fanout.observe(fanout)
        tally = self._tally(fid)
        tally["probes"] += 1
        tally["probe_entries"] += fanout

    def _obs_remat(self, fid: str) -> None:
        """Account one rematerialization (attempted body execution)."""
        if not self._obs_on:
            return
        self._m_remats.inc()
        self._tally(fid)["rematerializations"] += 1

    def _note(self, fid: str, args: tuple, why: str) -> None:
        if self._obs_on:
            self._row_notes[(fid, args)] = why

    def _on_guard_timing(self, fid: str, elapsed: float, failed: bool) -> None:
        self._m_remat_latency.observe(elapsed)

    def _on_breaker_transition(self, fid: str, old: Any, new: Any) -> None:
        self._m_breaker_transitions.inc()
        if self.tracer.enabled:
            self.tracer.event(
                "breaker.transition", fid=fid, old=old.value, new=new.value
            )

    def explain(self, gmr: GMR | None = None) -> ExplainReport:
        """The EXPLAIN report: per-fid row validity with reasons, the
        last invalidation wave, per-strategy cost tallies.  ``gmr``
        narrows the report to one GMR (``gmr.explain()`` sugar)."""
        return build_explain(self, gmr)

    # ------------------------------------------------------------------
    # GMR creation
    # ------------------------------------------------------------------

    def materialize(
        self,
        functions: Sequence[Any],
        *,
        complete: bool = True,
        strategy: Strategy | None = None,
        restriction: RestrictionSpec | None = None,
        storage: str = "auto",
        name: str | None = None,
        populate: bool = True,
        capacity: int | None = None,
        row_placement: str = "separate",
        layout: str | None = None,
    ) -> GMR:
        """Create the GMR ``⟨⟨f1, ..., fm⟩⟩`` and (optionally) populate it.

        ``functions`` items are ``(type_name, op_name)`` pairs, ``"Type.op"``
        ids of already registered functions, or :class:`FunctionInfo`
        objects.  ``complete=False`` creates an incrementally set up GMR
        (a result cache, Sec. 3.2); ``capacity`` bounds such a cache with
        LRU replacement.  ``strategy=None`` uses the object base's
        configured default (``db.config.strategy``); ``layout=None``
        likewise falls back to ``db.config.layout``.
        """
        if strategy is None:
            strategy = self._db.config.strategy
        if layout is None:
            layout = getattr(self._db.config, "layout", "rows")
        infos = [self._resolve_function(spec) for spec in functions]
        for info in infos:
            if info.fid in self._gmr_of_fid:
                raise GMRDefinitionError(
                    f"{info.fid} is already materialized in "
                    f"{self._gmr_of_fid[info.fid].name}"
                )
        gmr = GMR(
            infos,
            page_store=self._db.page_store,
            buffer=self._db.buffer,
            complete=complete,
            strategy=strategy,
            restriction=restriction,
            storage=storage,
            name=name,
            capacity=capacity,
            row_placement=row_placement,
            layout=layout,
        )
        if gmr.name in self._gmrs:
            raise GMRDefinitionError(f"a GMR named {gmr.name} already exists")
        validate_atomic_restrictions(gmr.arg_types, restriction)
        gmr._manager = self
        if self._entry_locks is not None:
            # Arm the per-entry lock layer (Sec. 4.1: lock the GMR
            # entry, not the objects); shared table across all GMRs.
            gmr.store.locks = self._entry_locks

        self._gmrs[gmr.name] = gmr
        for info in infos:
            self._gmr_of_fid[info.fid] = gmr
            self._op_dispatch[(info.type_name, info.op_name)] = info.fid
            if strategy is not Strategy.SNAPSHOT:
                # Snapshot GMRs are refreshed periodically, never
                # invalidated: they register no update dependencies.
                self._deps.add_function(info)
        if gmr.restriction is not None and gmr.restriction.predicate is not None:
            self._gmr_of_fid[gmr.predicate_fid] = gmr
            self._deps.add_pairs(gmr.predicate_fid, self._predicate_pairs(gmr))
        elif gmr.restriction is not None:
            # Atomic-only restriction: still track the pseudo function so
            # forget_object can clean rows via predicate RRR entries.
            self._gmr_of_fid[gmr.predicate_fid] = gmr
        # The fid registry changed: precompiled invalidation plans are
        # stale (the dependency-index version alone misses SNAPSHOT and
        # atomic-restriction registrations, which add no pairs).
        self.invalidate_plans()

        if complete and populate:
            self._populate(gmr)
        return gmr

    def _resolve_function(self, spec: Any) -> FunctionInfo:
        if isinstance(spec, FunctionInfo):
            return spec
        if isinstance(spec, tuple):
            type_name, op_name = spec
            return self._db.functions.register(type_name, op_name)
        if isinstance(spec, str):
            if "." in spec:
                type_name, op_name = spec.split(".", 1)
                return self._db.functions.register(type_name, op_name)
            raise GMRDefinitionError(
                f"function spec {spec!r} must be 'Type.op' or a (type, op) pair"
            )
        raise GMRDefinitionError(f"cannot interpret function spec {spec!r}")

    def _predicate_pairs(
        self, gmr: GMR
    ) -> frozenset[tuple[str, str]] | None:
        """RelAttr of the restriction predicate, typed from arg types."""
        spec = gmr.restriction
        assert spec is not None and spec.predicate is not None
        schema = self._db.schema
        pairs: set[tuple[str, str]] = set()
        names = list(spec.var_names)
        for variable in all_variables(spec.predicate):
            if variable.name not in names:
                return None  # unknown binding: be conservative
            current = gmr.arg_types[names.index(variable.name)]
            for attribute in variable.path:
                if is_atomic_type(current):
                    return None
                try:
                    declaring = schema.attribute_declaring_type(current, attribute)
                except SchemaError:
                    return None
                pairs.add((declaring, attribute))
                current = schema.attribute(current, attribute).type_name
        return frozenset(pairs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def rrr(self) -> ReverseReferenceRelation:
        return self._rrr

    @property
    def compensations(self) -> CompensationTable:
        return self._ca

    @property
    def deltas(self):
        """The delta maintenance registry (``DeltaRegistry``)."""
        return self._delta.registry

    @property
    def maintenance(self) -> str:
        """The active maintenance mode (``config.maintenance``)."""
        return self._db.config.maintenance

    def gmrs(self) -> list[GMR]:
        return list(self._gmrs.values())

    def gmr(self, name: str) -> GMR:
        try:
            return self._gmrs[name]
        except KeyError:
            raise GMRDefinitionError(f"no GMR named {name}") from None

    def gmr_of(self, fid: str) -> GMR | None:
        return self._gmr_of_fid.get(fid)

    def is_materialized_op(self, decl_type: str, op_name: str) -> bool:
        return (decl_type, op_name) in self._op_dispatch

    def fid_of_op(self, decl_type: str, op_name: str) -> str | None:
        return self._op_dispatch.get((decl_type, op_name))

    def schema_dep_fct(self, decl_type: str, attr: str) -> frozenset[str]:
        return self._deps.schema_dep_fct(decl_type, attr)

    def relevant_attrs(self, fid: str) -> frozenset[tuple[str, str]]:
        return self._deps.relevant_attrs(fid)

    # ------------------------------------------------------------------
    # Precompiled invalidation plans
    # ------------------------------------------------------------------

    def invalidate_plans(self) -> None:
        """Drop every precompiled invalidation plan.

        Called on GMR registry change (:meth:`materialize`) and on
        schema change (``ObjectBase._invalidate_plan_cache``); also
        re-reads ``config.invalidation_plans`` so the flag can be
        toggled on a live base.
        """
        self._fid_plans.clear()
        self._update_plans.clear()
        self._plan_epoch = self._deps.version
        self._plans_on = self._db.config.invalidation_plans

    def _check_plan_epoch(self) -> None:
        """Rebuild-on-mismatch guard against direct index mutation."""
        if self._plan_epoch != self._deps.version:
            self._fid_plans.clear()
            self._update_plans.clear()
            self._plan_epoch = self._deps.version

    def _fid_plan(self, fid: str) -> FidPlan | None:
        """The cached :class:`FidPlan` for ``fid`` (None = no GMR).

        Callers must have validated the plan epoch for the current
        wave (:meth:`_check_plan_epoch`).
        """
        plans = self._fid_plans
        try:
            return plans[fid]
        except KeyError:
            pass
        gmr = self._gmr_of_fid.get(fid)
        if gmr is None:
            plan = None
        else:
            strategy = gmr.strategy
            plan = FidPlan(
                fid,
                gmr,
                is_predicate=(fid == gmr.predicate_fid),
                marks_only=strategy.marks_only,
                deferred=strategy is Strategy.DEFERRED,
            )
        plans[fid] = plan
        return plan

    def update_plan(self, decl_type: str, attr: str) -> UpdatePlan | None:
        """The precompiled plan for the update ``decl_type.set_attr``.

        Returns ``None`` when plans are disabled
        (``config.invalidation_plans=False``), which tells the caller
        to fall back to the per-update SchemaDepFct scan.  ``plan.fids``
        equals :meth:`schema_dep_fct` for the same key by construction.
        """
        if not self._plans_on:
            return None
        self._check_plan_epoch()
        plan = self._update_plans.get((decl_type, attr))
        if plan is None:
            key = (decl_type, attr)
            fids = self._deps.schema_dep_fct(decl_type, attr)
            entries = tuple(
                fp
                for fid in sorted(fids)
                if (fp := self._fid_plan(fid)) is not None
            )
            plan = UpdatePlan(key, fids, entries)
            self._update_plans[key] = plan
        return plan

    # ------------------------------------------------------------------
    # Population and (re-)materialization
    # ------------------------------------------------------------------

    def _domains(self, gmr: GMR, fixed: dict[int, Any] | None = None) -> list[list]:
        domains: list[list] = []
        for position, type_name in enumerate(gmr.arg_types):
            if fixed is not None and position in fixed:
                domains.append([fixed[position]])
            elif is_atomic_type(type_name):
                assert gmr.restriction is not None
                domains.append(gmr.restriction.atomic_values(position))
            else:
                domains.append(list(self._db.objects.extension(type_name)))
        return domains

    def _populate(self, gmr: GMR) -> None:
        for args in product(*self._domains(gmr)):
            self._admit(gmr, args)

    def _admit(self, gmr: GMR, args: tuple) -> bool:
        """Evaluate the restriction for ``args`` and materialize the row."""
        if gmr.restriction is not None:
            try:
                if not self._evaluate_predicate(gmr, args):
                    return False
            except (FunctionExecutionError, FunctionQuarantinedError):
                # Membership undecidable right now: do not admit; the
                # retry queue re-runs the predicate and admits later.
                return False
        self.stats.rows_created += 1
        gmr.ensure_row(args)
        for fid in gmr.fids:
            self._remat_or_degrade(gmr, fid, args)
        return True

    def _evaluate_predicate(self, gmr: GMR, args: tuple) -> bool:
        """Evaluate (and trace) the restriction predicate for ``args``.

        The accessed objects get RRR entries under the GMR's predicate
        pseudo-function so later updates re-trigger the evaluation
        (Sec. 6.1).  Predicates execute under the same guard/breaker
        regime as function bodies (keyed by the predicate pseudo-fid):
        a raising or stalling predicate raises
        :class:`FunctionExecutionError` after a bounded retry has been
        scheduled, a quarantined one raises
        :class:`FunctionQuarantinedError` without running.
        """
        spec = gmr.restriction
        assert spec is not None
        db = self._db
        policy = self.fault_policy
        if not policy.enabled:
            self.stats.predicate_evaluations += 1
            with db.materialization_scope():
                with db.trace() as tracer:
                    allowed = spec.allows(db, args)
            if gmr.strategy is not Strategy.SNAPSHOT:
                accessed = set(tracer.objects)
                accessed.update(arg for arg in args if isinstance(arg, Oid))
                for oid in accessed:
                    self._rrr_insert(oid, gmr.predicate_fid, args)
            return allowed
        pfid = gmr.predicate_fid
        decision = self.breaker.acquire(pfid)
        if not decision.allowed:
            raise FunctionQuarantinedError(pfid)
        if decision.probe:
            self.stats.breaker_half_opens += 1
        self.stats.predicate_evaluations += 1
        with db.materialization_scope():
            with db.trace() as tracer:
                allowed, failure = self.guard.timed(
                    pfid, args, lambda: spec.allows(db, args)
                )
        if failure is not None:
            self.stats.guard_failures += 1
            if self._obs_on:
                self._m_guard_failures.inc()
                self._tally(pfid)["errors"] += 1
            if isinstance(failure, FunctionTimeoutError):
                self.stats.guard_timeouts += 1
            if self.breaker.record_failure(pfid):
                self.stats.breaker_opens += 1
            if self._scheduler_for(args).schedule_retry(gmr, pfid, args):
                self.stats.retries_scheduled += 1
            raise failure
        if self.breaker.record_success(pfid):
            self.stats.breaker_closes += 1
        if gmr.strategy is not Strategy.SNAPSHOT:
            accessed = set(tracer.objects)
            accessed.update(arg for arg in args if isinstance(arg, Oid))
            for oid in accessed:
                self._rrr_insert(oid, gmr.predicate_fid, args)
        return allowed

    def _rematerialize(self, gmr: GMR, fid: str, args: tuple) -> Any:
        """Recompute ``f(args)`` under a ``remat`` span when tracing."""
        tracer = self.tracer
        if not tracer.enabled:
            return self._rematerialize_impl(gmr, fid, args)
        with tracer.span("remat", fid=fid):
            return self._rematerialize_impl(gmr, fid, args)

    def _rematerialize_impl(self, gmr: GMR, fid: str, args: tuple) -> Any:
        """Recompute ``f(args)``, store it and refresh the RRR (Sec. 4.1).

        With the fault policy enabled the body runs under the execution
        guard: an exception or call-budget overrun demotes the entry to
        the ERROR state, charges the circuit breaker, schedules a
        bounded backed-off retry, and then raises
        :class:`FunctionExecutionError` — callers on maintenance paths
        catch it (see :meth:`_remat_or_degrade`), forward queries let it
        surface.  While the breaker is open (and not yet probe-eligible)
        the body is not run at all: :class:`FunctionQuarantinedError`.
        """
        info = gmr.function(fid)
        db = self._db
        policy = self.fault_policy
        # Write-epoch conflict protocol (sharded drains only): snapshot
        # the epoch before computing.  An odd epoch means an elementary
        # update is mutating the object graph *now*; any movement
        # between snapshot and commit means the computation may have
        # read half-applied state.  Either way the result is discarded,
        # the entry re-deferred onto its shard's queue, and
        # :class:`ShardCommitConflict` tells the drain loop to move on.
        # Foreground remats hold the global update lock (epoch stable
        # and even), so epoch0 stays -1 and the checks vanish.
        epoch0 = -1
        if self._shards > 1 and getattr(self._drain_flag, "active", 0):
            epoch0 = db._write_epoch
            if epoch0 & 1:
                self._defer_conflicted(gmr, fid, args)
                raise ShardCommitConflict(fid)
        if not policy.enabled:
            self.stats.rematerializations += 1
            self._obs_remat(fid)
            try:
                with db.trace() as tracer:
                    value = db.call_function(info, args)
            except Exception:
                if epoch0 >= 0 and db._write_epoch != epoch0:
                    # The body raced an update; the exception is an
                    # artifact of torn reads, not a real failure.
                    self._defer_conflicted(gmr, fid, args)
                    raise ShardCommitConflict(fid) from None
                # A failing function body must never leave a stale value
                # flagged valid (Def. 3.2): invalidate the entry and let
                # the error surface to the updater/querier.
                if gmr.lookup(args) is not None:
                    gmr.mark_invalid(args, fid)
                    self._note(fid, args, "invalidated (body raised, unguarded)")
                raise
        else:
            decision = self.breaker.acquire(fid)
            if not decision.allowed:
                raise FunctionQuarantinedError(fid)
            if decision.probe:
                self.stats.breaker_half_opens += 1
            self.stats.rematerializations += 1
            self._obs_remat(fid)
            with db.trace() as tracer:
                value, failure = self.guard.timed(
                    fid, args, lambda: db.call_function(info, args)
                )
            if failure is not None:
                if epoch0 >= 0 and db._write_epoch != epoch0:
                    # Racing-update artifact: no failure accounting, no
                    # breaker charge — just try again shortly.
                    self._defer_conflicted(gmr, fid, args)
                    raise ShardCommitConflict(fid)
                self._record_failure(gmr, fid, args, failure)
                raise failure
            if self.breaker.record_success(fid):
                self.stats.breaker_closes += 1
        if epoch0 >= 0 and db._write_epoch != epoch0:
            self._defer_conflicted(gmr, fid, args)
            raise ShardCommitConflict(fid)
        gmr.set_result(args, fid, value)
        self._note(fid, args, "rematerialized")
        if gmr.strategy is not Strategy.SNAPSHOT:
            accessed = set(tracer.objects)
            accessed.update(arg for arg in args if isinstance(arg, Oid))
            for oid in accessed:
                self._rrr_insert(oid, fid, args)
        return value

    def _defer_conflicted(self, gmr: GMR, fid: str, args: tuple) -> None:
        """Requeue an entry whose drain lost the write-epoch race."""
        if self.tracer.enabled:
            self.tracer.event("shard.conflict", fid=fid)
        self._scheduler_for(args).defer(gmr, fid, args)

    def _record_failure(
        self,
        gmr: GMR,
        fid: str,
        args: tuple,
        failure: FunctionExecutionError,
    ) -> None:
        """Bookkeeping for one guard failure: ERROR state, breaker,
        bounded retry.  Runs before the failure propagates, so the GMR
        is consistent (Def. 3.2 — no stale-valid row) no matter how the
        caller handles the exception."""
        self.stats.guard_failures += 1
        if self._obs_on:
            self._m_guard_failures.inc()
            self._tally(fid)["errors"] += 1
        if self.tracer.enabled:
            self.tracer.event(
                "guard.failure",
                fid=fid,
                timeout=isinstance(failure, FunctionTimeoutError),
            )
        if isinstance(failure, FunctionTimeoutError):
            self.stats.guard_timeouts += 1
        if gmr.lookup(args) is None:
            # Materializing a brand-new combination failed: create the
            # row anyway so the ERROR is observable and retries have a
            # target (all entries start invalid).
            self.stats.rows_created += 1
            gmr.ensure_row(args)
        gmr.mark_error(args, fid)
        self._note(
            fid,
            args,
            "error (call budget overrun)"
            if isinstance(failure, FunctionTimeoutError)
            else "error (body raised under guard)",
        )
        if self.breaker.record_failure(fid):
            self.stats.breaker_opens += 1
        if self._scheduler_for(args).schedule_retry(gmr, fid, args):
            self.stats.retries_scheduled += 1

    def _remat_or_degrade(self, gmr: GMR, fid: str, args: tuple) -> bool:
        """Rematerialize on a *maintenance* path; never let user-code
        failures unwind the caller's loop.

        Quarantined functions degrade to mark-and-schedule (the entry
        heals once the breaker closes); guard failures have already been
        recorded by :meth:`_rematerialize`.  Returns True on success.
        """
        policy = self.fault_policy
        if (
            policy.enabled
            and self.breaker.quarantined(fid)
            and not self.breaker.probe_eligible(fid)
        ):
            gmr.mark_invalid(args, fid)
            self._note(fid, args, "invalidated (function quarantined)")
            self._scheduler_for(args).schedule(gmr, fid, args)
            return False
        try:
            self._rematerialize(gmr, fid, args)
        except (FunctionExecutionError, FunctionQuarantinedError):
            return False
        except ShardCommitConflict:
            return False  # entry re-deferred; a later drain retries
        return True

    def _predicate_update_safe(self, gmr: GMR, args: tuple) -> bool:
        """Run :meth:`_predicate_update` on a maintenance path; a
        failing or quarantined predicate must not unwind the loop.
        Returns True when the update ran to completion."""
        try:
            self._predicate_update(gmr, args)
        except (FunctionExecutionError, FunctionQuarantinedError):
            return False
        return True

    def _degraded_value(self, gmr: GMR, fid: str, args: tuple) -> Any:
        """Answer a forward query by direct evaluation (Sec. 3.2).

        The pass-through read path of a quarantined function: no trace,
        no RRR refresh, no GMR write, no breaker bookkeeping — the
        stored (ERROR) entry is left for the probe/retry machinery.
        """
        info = gmr.function(fid)
        db = self._db
        try:
            with db.materialization_scope():
                return db.call_function(info, args)
        except Exception as exc:
            raise FunctionExecutionError(fid, args, cause=exc) from exc

    # -- RRR/ObjDepFct lockstep maintenance (Sec. 5.2) ---------------------------

    # Each helper runs under ``_rrr_latch`` — the leaf latch that keeps
    # the RRR's dict-of-sets (and the ObjDepFct markings kept in
    # lockstep with it) structurally sound when a sharded drain's
    # commit races a global-locked updater's probe.  Unsharded the
    # latch is a shared no-op context.

    def _rrr_insert(self, oid: Oid, fid: str, args: tuple) -> None:
        with self._rrr_latch:
            first = self._rrr.insert(oid, fid, args)
            if first and self._db.objects.exists(oid):
                self._db.objects.get(oid).obj_dep_fct.add(fid)

    def _rrr_pop_args(self, oid: Oid, fid: str) -> set[tuple]:
        with self._rrr_latch:
            popped = self._rrr.pop_args(oid, fid)
            if popped and self._db.objects.exists(oid):
                self._db.objects.get(oid).obj_dep_fct.discard(fid)
            return popped

    def _rrr_pop_args_grouped(
        self, oid: Oid, fids: Iterable[str]
    ) -> dict[str, set[tuple]]:
        """Grouped :meth:`_rrr_pop_args`: one latch acquisition and one
        bucket walk for a whole invalidation wave."""
        with self._rrr_latch:
            popped = self._rrr.pop_args_grouped(oid, fids)
            if self._db.objects.exists(oid):
                obj_dep = self._db.objects.get(oid).obj_dep_fct
                for fid, args_set in popped.items():
                    if args_set:
                        obj_dep.discard(fid)
            return popped

    def _rrr_remove(self, oid: Oid, fid: str, args: tuple) -> None:
        with self._rrr_latch:
            last = self._rrr.remove(oid, fid, args)
            if last and self._db.objects.exists(oid):
                self._db.objects.get(oid).obj_dep_fct.discard(fid)

    def _sync_obj_dep(self, oid: Oid) -> None:
        """Rebuild an object's ObjDepFct from its current RRR entries."""
        with self._rrr_latch:
            if not self._db.objects.exists(oid):
                return
            obj = self._db.objects.get(oid)
            current = self._rrr.fids_of(oid)
            obj.obj_dep_fct.clear()
            obj.obj_dep_fct.update(current)

    def _rrr_pop_object(self, oid: Oid) -> dict[str, set[tuple]]:
        """Latched ``rrr.pop_object`` plus the ObjDepFct clear (the
        grouped probe of the forget paths)."""
        with self._rrr_latch:
            by_fct = self._rrr.pop_object(oid)
            if self._db.objects.exists(oid):
                self._db.objects.get(oid).obj_dep_fct.clear()
            return by_fct

    def _rrr_fids_of(self, oid: Oid) -> set[str]:
        with self._rrr_latch:
            return self._rrr.fids_of(oid)

    def _rrr_args_of(self, oid: Oid, fid: str) -> list[tuple]:
        with self._rrr_latch:
            return list(self._rrr.args_of(oid, fid))

    # ------------------------------------------------------------------
    # Batched maintenance (the deferred-notification pipeline)
    # ------------------------------------------------------------------

    @property
    def batching(self) -> bool:
        """Whether notifications are currently deferred into the queue.

        ``db.config.batching = False`` turns every batch scope into a
        pass-through (notifications process eagerly).
        """
        return (
            self._batch_depth > 0
            and not self._flushing
            and self._db.config.batching
        )

    @batching.setter
    def batching(self, value: bool) -> None:
        warnings.warn(
            "assigning manager.batching is deprecated; set "
            "MaterializationConfig.batching (db.config.batching) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._db.config.batching = bool(value)

    @property
    def batch_conservative(self) -> bool:
        """Whether batch-mode notifications must skip the ObjDepFct
        filter — either because a create adaptation is pending (markings
        of in-batch objects are not materialized yet, see
        :attr:`InvalidationQueue.has_creates`) or because
        ``db.config.batch_conservative`` forces it."""
        return self.batching and (
            self._queue.has_creates or self._db.config.batch_conservative
        )

    def batch(self) -> UpdateBatch:
        """Open a batched-maintenance scope (see :mod:`repro.core.batch`).

        Usually entered via :meth:`ObjectBase.batch`.
        """
        return UpdateBatch(self)

    def flush_batch(self) -> FlushReport:
        """Replay all deferred maintenance events in order.

        Called at batch exit and — to preserve query correctness —
        before any forward or backward query while a batch is open.
        Each invalidation event performs one grouped RRR probe for its
        object, however many elementary updates coalesced into it.
        Returns a :class:`~repro.core.batch.FlushReport` (int-compatible
        with the former bare event count).
        """
        with self._maint_lock:
            return self._flush_batch_impl()

    def _flush_batch_impl(self) -> FlushReport:
        if not len(self._queue):
            return FlushReport(0)
        if self._batch_depth > 0:
            # A query forced this flush while the batch is still open —
            # log a marker so recovery reproduces the flush timing (and
            # with it every validity flag) bit-for-bit.
            self._db._wal_log({"kind": "batch_flush"})
        events = self._queue.drain()
        tracer = self.tracer
        span = (
            tracer.begin("batch.flush", events=len(events))
            if tracer.enabled
            else None
        )
        invalidations = creates = forgets = 0
        self._flushing = True
        try:
            for event in events:
                if isinstance(event, InvalidationEvent):
                    invalidations += 1
                    relevant = set(event.fids)
                    if event.all_fids:
                        relevant |= (
                            self._rrr_fids_of(event.oid) - event.all_exclude
                        )
                    self.invalidate(event.oid, relevant, via="batch")
                elif isinstance(event, CreateEvent):
                    creates += 1
                    if self._db.objects.exists(event.oid):
                        self.new_object(event.oid, event.type_name)
                else:
                    assert isinstance(event, ForgetEvent)
                    forgets += 1
                    self._forget_grouped(event)
        finally:
            self._flushing = False
            if span is not None:
                tracer.end(span)
        self.stats.batch_flushes += 1
        return FlushReport(
            events=len(events),
            invalidations=invalidations,
            creates=creates,
            forgets=forgets,
        )

    def _forget_grouped(self, event: ForgetEvent) -> None:
        """Process a deferred deletion, serving a folded-in invalidation
        of the same object from the single ``pop_object`` probe."""
        oid = event.oid
        folded = event.folded
        inv_fids: set[str] = set()
        by_fct = self._rrr_pop_object(oid)
        self._obs_probe(
            FORGET_KEY, sum(len(args_set) for args_set in by_fct.values())
        )
        if folded is not None:
            inv_fids = set(folded.fids)
            if folded.all_fids:
                inv_fids |= set(by_fct) - folded.all_exclude
            self.stats.invalidate_calls += 1  # the merged probe
        affected = 0
        for fid, args_set in by_fct.items():
            gmr = self._gmr_of_fid.get(fid)
            if gmr is None:
                continue
            process = fid in inv_fids
            for args in args_set:
                if oid in args:
                    if (
                        process
                        and fid != gmr.predicate_fid
                        and gmr.strategy.marks_only
                    ):
                        # Sequential equivalence: the folded invalidation
                        # ran *before* the delete and consumed this RRR
                        # entry, so the unbatched run's forget_object never
                        # saw it — the row stays behind as a blind invalid
                        # row, cleaned lazily (Sec. 4.2).
                        if gmr.mark_invalid(args, fid) and (
                            gmr.strategy is Strategy.DEFERRED
                        ):
                            self._scheduler_for(args).schedule(gmr, fid, args)
                        affected += 1
                        continue
                    # The forget_object part: drop the deleted object's
                    # own rows; any folded invalidation of them is moot
                    # for eager strategies (rematerialization would have
                    # re-inserted the entry for the delete to find).
                    if gmr.remove_row(args):
                        self.stats.rows_removed += 1
                    continue
                if not process:
                    continue  # entry dropped; the row becomes blind
                if fid == gmr.predicate_fid:
                    self._predicate_update_safe(gmr, args)
                    affected += 1
                elif gmr.strategy.marks_only:
                    if gmr.mark_invalid(args, fid) and (
                        gmr.strategy is Strategy.DEFERRED
                    ):
                        self._scheduler_for(args).schedule(gmr, fid, args)
                    affected += 1
                else:
                    if gmr.lookup(args) is None:
                        continue
                    if not self._args_alive(args):
                        gmr.remove_row(args)
                        self.stats.blind_rows_removed += 1
                        continue
                    self._remat_or_degrade(gmr, fid, args)
                    affected += 1
        if event.created_elided and folded is not None and event.type_name:
            affected += self._synthesize_blind_rows(event)
        self.stats.entries_invalidated += affected

    def _synthesize_blind_rows(self, event: ForgetEvent) -> int:
        """Reproduce the blind rows of a create→invalidate→delete run.

        When all three fell inside one batch the queue elided the create,
        so no extension adaptation ever ran and ``pop_object`` has nothing
        to serve the folded invalidation from.  Sequentially, though, the
        adaptation materialized the rows eagerly, the invalidation then
        consumed their RRR entries and cleared the values (marks-only
        strategies), and the delete — finding no entries left — walked
        away, leaving blind invalid rows for lazy cleanup (Sec. 4.2).
        Only fully covered GMRs survive that way: an fid the invalidation
        skipped keeps its RRR entry, which the delete then finds and uses
        to remove the whole row.  Restricted GMRs are skipped — their
        predicate cannot be re-evaluated on the now-dead object, and the
        sequential predicate trace is not reconstructible at flush.
        """
        oid, folded = event.oid, event.folded
        assert folded is not None and event.type_name is not None
        schema = self._db.schema
        affected = 0
        for gmr in self._gmrs.values():
            if (
                not gmr.complete
                or not gmr.strategy.marks_only
                or gmr.restriction is not None
            ):
                continue
            fids = set(gmr.fids)
            if folded.all_fids:
                # Explicitly named fids stay covered even when a merged
                # compensating exclusion skipped them in the naive pass.
                covered = not (fids & (folded.all_exclude - folded.fids))
            else:
                covered = fids <= folded.fids
            if not covered:
                continue
            positions = [
                index
                for index, arg_type in enumerate(gmr.arg_types)
                if not is_atomic_type(arg_type)
                and schema.is_subtype(event.type_name, arg_type)
            ]
            combos: set[tuple] = set()
            for position in positions:
                combos.update(
                    product(*self._domains(gmr, fixed={position: oid}))
                )
            for args in combos:
                if gmr.lookup(args) is None:
                    self.stats.rows_created += 1
                    gmr.ensure_row(args)
                for fid in gmr.fids:
                    if gmr.mark_invalid(args, fid) and (
                        gmr.strategy is Strategy.DEFERRED
                    ):
                        self._scheduler_for(args).schedule(gmr, fid, args)
                    affected += 1
        return affected

    # ------------------------------------------------------------------
    # Invalidation (Sec. 4.1)
    # ------------------------------------------------------------------

    def invalidate(
        self,
        oid: Oid,
        fcts: Iterable[str] | None = None,
        *,
        exclude: frozenset[str] = frozenset(),
        via: str = "direct",
    ) -> int:
        """Handle an update of ``oid``; returns the number of affected
        entries.  ``fcts=None`` is the naive variant (Figure 4): the RRR
        is searched for every function.

        While a batch is open the notification is deferred into the
        queue (coalescing with pending notifications for ``oid``) and 0
        is returned; the work happens at the next flush.

        ``via`` labels the notification path that delivered this wave
        for the trace/EXPLAIN layer (``"naive"``, ``"schema_dep"``,
        ``"obj_dep"``, ``"invalidated_fct"``, ``"batch"``, ...); it does
        not affect maintenance semantics.
        """
        if self.batching:
            merged = self._queue.note_invalidate(oid, fcts, exclude)
            self.stats.batched_invalidations += 1
            if merged:
                self.stats.rrr_probes_saved += 1
            if self.tracer.enabled:
                self.tracer.event(
                    "invalidate.deferred", oid=str(oid), merged=merged, via=via
                )
            return 0
        self.stats.invalidate_calls += 1
        if fcts is None:
            relevant = self._rrr_fids_of(oid)
        else:
            relevant = set(fcts)
        if exclude:
            relevant -= exclude
        tracer = self.tracer
        span = (
            tracer.begin(
                "invalidate.wave",
                oid=str(oid),
                via=via,
                fids=sorted(relevant),
                exclude=sorted(exclude),
            )
            if tracer.enabled
            else None
        )
        affected = 0
        probes = 0
        plans_on = self._plans_on
        if plans_on:
            self._check_plan_epoch()
        # A *pure marks-only* wave — every relevant function dispatches
        # to the LAZY/DEFERRED mark path, so nothing inside the loop can
        # insert fresh RRR entries for a later fid — takes the grouped
        # RRR probe: one latch acquisition and one bucket walk for the
        # whole wave instead of a per-fid pop.  Any predicate or eager
        # fid keeps the per-fid pops (their processing re-registers
        # dependencies mid-wave, which grouped pre-popping would miss).
        grouped: dict[str, set[tuple]] | None = None
        if self.rrr_policy != "second_chance" and len(relevant) > 1:
            pure_marks = True
            for fid in relevant:
                if plans_on:
                    plan = self._fid_plan(fid)
                    if plan is not None and (
                        plan.is_predicate or not plan.marks_only
                    ):
                        pure_marks = False
                        break
                else:
                    gmr = self._gmr_of_fid.get(fid)
                    if gmr is not None and (
                        fid == gmr.predicate_fid or not gmr.strategy.marks_only
                    ):
                        pure_marks = False
                        break
            if pure_marks:
                grouped = self._rrr_pop_args_grouped(oid, relevant)
        try:
            for fid in relevant:
                if self.rrr_policy == "second_chance":
                    # Step 1, second-chance variant: drop stale leftovers
                    # from the previous round, mark the fresh entries and
                    # process exactly those.
                    with self._rrr_latch:
                        self._rrr.pop_marked(oid, fid)
                        args_set = self._rrr.mark_all(oid, fid)
                    self._sync_obj_dep(oid)
                elif grouped is not None:
                    args_set = grouped[fid]
                else:
                    args_set = self._rrr_pop_args(oid, fid)
                probes += 1
                self._obs_probe(fid, len(args_set))
                if not args_set:
                    continue
                if plans_on:
                    plan = self._fid_plan(fid)
                    if plan is None:
                        continue
                    gmr = plan.gmr
                    is_predicate = plan.is_predicate
                    marks_only = plan.marks_only
                    deferred = plan.deferred
                else:
                    gmr = self._gmr_of_fid.get(fid)
                    if gmr is None:
                        continue
                    is_predicate = fid == gmr.predicate_fid
                    marks_only = gmr.strategy.marks_only
                    deferred = gmr.strategy is Strategy.DEFERRED
                before = affected
                if is_predicate:
                    for args in args_set:
                        self._predicate_update_safe(gmr, args)
                        affected += 1
                elif marks_only:
                    # A missing row is a blind reference (Sec. 4.2): the
                    # popped entry was the stale leftover; nothing to do.
                    # ``mark_invalid_many`` resolves the batch in one
                    # pass (columnar: over the flag arrays) and returns
                    # the entries that actually transitioned.
                    changed = gmr.mark_invalid_many(args_set, fid)
                    if deferred:
                        for args in changed:
                            self._scheduler_for(args).schedule(gmr, fid, args)
                    reason = f"invalidated via={via}"
                    for args in args_set:
                        self._note(fid, args, reason)
                    affected += len(args_set)
                else:
                    for args in args_set:
                        if gmr.lookup(args) is None:
                            continue  # blind reference, lazily cleaned
                        if not self._args_alive(args):
                            gmr.remove_row(args)  # blind row: arg deleted
                            self.stats.blind_rows_removed += 1
                            continue
                        # A failure inside one entry must not abandon the
                        # rest of the popped args_set/fid loop: the entry
                        # degrades to ERROR (retry scheduled) and the sweep
                        # continues — invalidate() never unwinds mid-loop.
                        self._remat_or_degrade(gmr, fid, args)
                        affected += 1
                if self._obs_on and affected > before:
                    self._tally(fid)["invalidations"] += affected - before
        finally:
            if span is not None:
                tracer.end(span, width=affected, probes=probes)
        if self._obs_on:
            self._m_waves.inc()
            self._m_wave_width.observe(affected)
            self.last_wave = WaveExplain(
                oid=oid,
                via=via,
                fids=tuple(sorted(relevant)),
                exclude=tuple(sorted(exclude)),
                width=affected,
                probes=probes,
            )
        self.stats.entries_invalidated += affected
        return affected

    def _args_alive(self, args: tuple) -> bool:
        return self._db.objects.exists_all(
            arg for arg in args if isinstance(arg, Oid)
        )

    def _predicate_update(self, gmr: GMR, args: tuple) -> None:
        """Sec. 6.1: re-evaluate the restriction predicate for ``args``."""
        if any(
            isinstance(arg, Oid) and not self._db.objects.exists(arg)
            for arg in args
        ):
            return  # argument object gone; row (if any) is removed elsewhere
        allowed = self._evaluate_predicate(gmr, args)
        row = gmr.lookup(args)
        if allowed:
            if row is None:
                gmr.ensure_row(args)
                for fid in gmr.fids:
                    self._remat_or_degrade(gmr, fid, args)
        else:
            if row is not None:
                gmr.remove_row(args)

    # ------------------------------------------------------------------
    # Creation / deletion of argument objects (Sec. 4.2)
    # ------------------------------------------------------------------

    def new_object(self, oid: Oid, type_name: str) -> None:
        """Insert GMR entries for every argument combination containing
        the new object (complete GMRs only)."""
        if self.batching:
            self._queue.note_create(oid, type_name)
            self.stats.batched_invalidations += 1
            return
        schema = self._db.schema
        for gmr in self._gmrs.values():
            if not gmr.complete or gmr.strategy is Strategy.SNAPSHOT:
                continue
            positions = [
                index
                for index, arg_type in enumerate(gmr.arg_types)
                if not is_atomic_type(arg_type)
                and schema.is_subtype(type_name, arg_type)
            ]
            if not positions:
                continue
            combos: set[tuple] = set()
            for position in positions:
                combos.update(product(*self._domains(gmr, fixed={position: oid})))
            for args in combos:
                if gmr.lookup(args) is None:
                    self._admit(gmr, args)

    def forget_object(self, oid: Oid) -> None:
        """Remove the deleted object's RRR entries and every GMR entry it
        was an argument of; other references become blind and are cleaned
        lazily (Sec. 4.2)."""
        if self.batching:
            # Captured while the object is still alive: the flush may
            # need its type to enumerate argument combinations.
            type_name = (
                self._db.objects.type_of(oid)
                if self._db.objects.exists(oid)
                else None
            )
            if self._queue.note_forget(oid, type_name):
                self.stats.rrr_probes_saved += 1
            self.stats.batched_invalidations += 1
            return
        by_fct = self._rrr_pop_object(oid)
        self._obs_probe(
            FORGET_KEY, sum(len(args_set) for args_set in by_fct.values())
        )
        if self.tracer.enabled:
            self.tracer.event("forget", oid=str(oid), fids=sorted(by_fct))
        for fid, args_set in by_fct.items():
            gmr = self._gmr_of_fid.get(fid)
            if gmr is None:
                continue
            for args in args_set:
                if oid in args and gmr.remove_row(args):
                    self.stats.rows_removed += 1

    # ------------------------------------------------------------------
    # Compensating actions (Sec. 5.4)
    # ------------------------------------------------------------------

    def register_delta(
        self,
        function: Any,
        *,
        on: dict[tuple[str, str], Callable[..., Any]] | None = None,
        aggregate: AggregateSpec | None = None,
        name: str = "",
    ) -> DeltaSpec:
        """Declare delta maintenance for a materialized ``function``.

        ``on`` maps update keys ``(type_name, update_op)`` to handlers
        ``(old_result, update) -> new_result`` — declared once per fid,
        the generalized successor of per-op compensating actions.
        ``aggregate`` declares a self-maintainable aggregate shape
        (:func:`repro.core.delta.sum_of` and friends) over the
        function's collection-typed argument; its ``insert``/``remove``
        update keys are derived automatically.

        Enforces the same side condition as Def. 5.4: every update key
        must belong to an *argument type* of the materialized function
        (attaching elsewhere — e.g. ``Cuboid.scale`` for
        ``total_volume`` — leads to inconsistent extensions).  The
        declarations only run under ``maintenance="delta"``.
        """
        info = self._resolve_function(function)
        if info.fid not in self._gmr_of_fid:
            raise CompensationError(
                f"{info.fid} is not materialized; create its GMR first"
            )
        if not on and aggregate is None:
            raise CompensationError(
                "define_delta needs on= handlers and/or an aggregate= shape"
            )
        handlers: dict[tuple[str, str], Callable[..., Any]] = {}
        for (update_type, update_op), handler in (on or {}).items():
            decl_type = self._resolve_update_type(update_type, update_op)
            self._check_update_legality(info, decl_type, update_op)
            handlers[(decl_type, update_op)] = handler
        aggregate_keys: set[tuple[str, str]] = set()
        if aggregate is not None:
            schema = self._db.schema
            collection_types = [
                arg_type
                for arg_type in info.arg_types
                if not is_atomic_type(arg_type)
                and schema.type(arg_type).is_collection()
            ]
            if not collection_types:
                raise CompensationError(
                    f"aggregate delta maintenance needs a collection-typed "
                    f"argument; {info.fid} has none"
                )
            for arg_type in collection_types:
                aggregate_keys.add((arg_type, "insert"))
                aggregate_keys.add((arg_type, "remove"))
        spec = DeltaSpec(
            info.fid,
            handlers=handlers,
            aggregate=aggregate,
            aggregate_keys=aggregate_keys,
            name=name or (aggregate.name if aggregate is not None else ""),
        )
        return self._delta.registry.register(spec)

    def register_compensation(
        self,
        update_type: str,
        update_op: str,
        function: Any,
        action: Callable[..., Any],
        *,
        name: str = "",
    ) -> CompensatingAction:
        """Register ``action`` as the compensating action for ``function``
        and the update operation ``update_type.update_op``.

        Enforces Def. 5.4's side condition: the update operation must be
        associated with an *argument type* of the materialized function.

        .. deprecated::
            Use :meth:`register_delta` / ``db.define_delta(...)``.  This
            shim still fills the legacy CA table (so
            ``maintenance="compensate"`` behaves exactly as before) and
            additionally adapts the action into the delta registry, so
            registered actions keep working under ``maintenance="delta"``.
        """
        warnings.warn(
            "register_compensation is deprecated; declare the handler via "
            "db.define_delta(fid, on={(type, op): handler}) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        info = self._resolve_function(function)
        if info.fid not in self._gmr_of_fid:
            raise CompensationError(
                f"{info.fid} is not materialized; create its GMR first"
            )
        decl_type = self._resolve_update_type(update_type, update_op)
        self._check_update_legality(info, decl_type, update_op)
        entry = CompensatingAction(
            update_type=decl_type,
            update_op=update_op,
            fid=info.fid,
            action=action,
            name=name or getattr(action, "__name__", ""),
        )
        self._ca.register(entry)
        self._delta.registry.adopt_compensation(entry)
        return entry

    def _check_update_legality(
        self, info: FunctionInfo, decl_type: str, update_op: str
    ) -> None:
        """Def. 5.4's consistency restriction, shared by both the legacy
        and the delta registration surfaces."""
        schema = self._db.schema
        compatible = any(
            schema.is_subtype(decl_type, arg_type)
            or schema.is_subtype(arg_type, decl_type)
            for arg_type in info.arg_types
            if not is_atomic_type(arg_type)
        )
        if not compatible:
            raise CompensationError(
                f"compensating actions may only be specified for update "
                f"operations of argument types of the materialized function; "
                f"{decl_type}.{update_op} is not associated with an argument "
                f"type of {info.fid}"
            )

    def _resolve_update_type(self, update_type: str, update_op: str) -> str:
        schema = self._db.schema
        definition = schema.type(update_type)
        if update_op in ("insert", "remove") and definition.is_collection():
            return update_type
        if update_op.startswith("set_"):
            attr = update_op[len("set_") :]
            return schema.attribute_declaring_type(update_type, attr)
        declaring, _ = schema.resolve_operation(update_type, update_op)
        return declaring

    def has_compensation(self, decl_type: str, update_op: str) -> bool:
        """Whether the active maintenance mode patches this update key."""
        mode = self._db.config.maintenance
        if mode == "recompute":
            return False
        if self._ca.has(decl_type, update_op):
            return True
        return mode == "delta" and self._delta.registry.has(
            (decl_type, update_op)
        )

    def compensated_fct(self, decl_type: str, update_op: str) -> frozenset[str]:
        """``CompensatedFct(t.u)`` under the active maintenance mode."""
        mode = self._db.config.maintenance
        if mode == "recompute":
            return frozenset()
        fids = self._ca.compensated_fct(decl_type, update_op)
        if mode == "delta":
            fids |= self._delta.registry.fids_for((decl_type, update_op))
        return fids

    def compensate(
        self,
        oid: Oid,
        update_args: tuple,
        decl_type: str,
        update_op: str,
        fcts: Iterable[str],
    ) -> frozenset[str]:
        """Patch GMR entries for an impending update of ``oid``.

        Called *before* the update executes so patches can read the old
        object-base state (Sec. 5.4).  Returns the fids fully handled —
        the caller excludes exactly those from the post-update
        invalidation wave.  Under ``maintenance="compensate"`` this is
        the CA table's original all-or-nothing behavior; under
        ``"delta"`` the delta engine runs first and any fid with a
        discarded patch falls through to the wave (the maintenance
        lattice's bottom rung).
        """
        fcts = frozenset(fcts)
        mode = self._db.config.maintenance
        if mode == "recompute" or not fcts:
            return frozenset()
        if mode == "delta":
            key = (decl_type, update_op)
            delta_fids = {
                fid
                for fid in fcts
                if self._delta.registry.can_handle(fid, key)
            }
            handled = self._delta.apply(
                oid, update_args, decl_type, update_op, delta_fids
            )
            rest = fcts - delta_fids
            if rest:
                # Middle rung of the lattice: fids with only a legacy
                # CA entry for this key run the classic Sec. 5.4 path.
                self._compensate_ca(oid, update_args, decl_type, update_op, rest)
                handled |= rest
            return frozenset(handled)
        self._compensate_ca(oid, update_args, decl_type, update_op, fcts)
        return fcts

    def _compensate_ca(
        self,
        oid: Oid,
        update_args: tuple,
        decl_type: str,
        update_op: str,
        fcts: Iterable[str],
    ) -> int:
        """The classic compensating-action path (Sec. 5.4)."""
        db = self._db
        compensated = 0
        for fid in fcts:
            entry = self._ca.action_for(decl_type, update_op, fid)
            if entry is None:
                continue
            gmr = self._gmr_of_fid.get(fid)
            if gmr is None:
                continue
            receiver = db.handle(oid)
            wrapped = tuple(
                db.handle(argument) if isinstance(argument, Oid) else argument
                for argument in update_args
            )
            for args in self._rrr_args_of(oid, fid):
                old, valid, _error, exists = gmr.entry_cell(args, fid)
                if not exists:
                    self._rrr_remove(oid, fid, args)  # blind reference
                    continue
                if not valid:
                    continue  # already invalid; the next access recomputes
                with db.materialization_scope():
                    with db.trace() as tracer:
                        new_value = entry.action(receiver, *wrapped, old)
                self.stats.compensations += 1
                if self._obs_on:
                    self._m_compensations.inc()
                    self._tally(fid)["compensations"] += 1
                    self._row_notes[(fid, args)] = (
                        f"compensated ({entry.name or update_op})"
                    )
                if self.tracer.enabled:
                    self.tracer.event(
                        "compensation",
                        fid=fid,
                        oid=str(oid),
                        action=entry.name or update_op,
                    )
                gmr.set_result(args, fid, new_value)
                accessed = set(tracer.objects)
                accessed.update(arg for arg in args if isinstance(arg, Oid))
                for touched in accessed:
                    self._rrr_insert(touched, fid, args)
                compensated += 1
        return compensated

    # ------------------------------------------------------------------
    # Retrieval (Sec. 3.2)
    # ------------------------------------------------------------------

    def retrieve_forward_op(
        self, decl_type: str, op_name: str, args: tuple
    ) -> Any:
        fid = self._op_dispatch[(decl_type, op_name)]
        return self.retrieve_forward(fid, args)

    def retrieve_forward(self, fid: str, args: tuple) -> Any:
        """A forward query: the result of ``f(args)``.

        Serves valid entries from the GMR; (re-)computes invalid or
        missing entries (updating the GMR, unless the arguments fall
        outside a restriction — then the "normal" function answers).
        A query inside an open batch forces a flush first: the answer
        must reflect every elementary update already applied.

        While ``fid`` is quarantined (open breaker, cooldown running)
        the query degrades to direct evaluation — correct by Sec. 3.2
        transparency and byte-identical to the unmaterialized answer;
        the GMR is left untouched for the probe/retry machinery.  Once
        the cooldown elapses the recomputation below doubles as the
        half-open probe.

        With a worker pool (``workers > 0``) the query first tries the
        consistent-read fast path: a valid entry is served under only
        its *entry read lock*, so a reader never blocks behind an
        in-flight rematerialization of a different entry.  Misses fall
        through to the ordinary path under the object base's update
        lock.  ``workers=0`` takes the original single-threaded
        sequence unchanged.
        """
        if self._mt:
            return self._retrieve_forward_mt(fid, args)
        if self.batching:
            self.flush_batch()
        self.scheduler.note_query(fid)
        return self._retrieve_forward_impl(fid, args)

    def _retrieve_forward_mt(self, fid: str, args: tuple) -> Any:
        """Multi-threaded forward query (see :meth:`retrieve_forward`).

        The fast path is skipped for capacity-bounded GMRs (an LRU
        cache mutates its recency order on lookup, which needs the
        update lock) and while a batch scope is open (the answer must
        reflect the pending flush).  Quarantined functions also take
        the slow path so their degraded direct evaluation runs under
        the update lock, never against concurrently mutating objects.
        """
        self.scheduler.note_query(fid)
        gmr = self._gmr_of_fid.get(fid)
        if gmr is not None and gmr.capacity is None and not self.batching:
            policy = self.fault_policy
            if not (
                policy.enabled
                and self.breaker.quarantined(fid)
                and not self.breaker.probe_eligible(fid)
            ):
                store = gmr.store
                column = gmr.column_of(fid)
                locks = store.locks
                if locks is not None:
                    with locks.read(args):
                        value, valid, _exists = store.probe(args, column)
                        if valid:
                            self.stats.forward_hits += 1
                            return value
                else:  # pragma: no cover - locks always armed in MT mode
                    value, valid, _exists = store.probe(args, column)
                    if valid:
                        self.stats.forward_hits += 1
                        return value
        with self._maint_lock:
            if self.batching:
                self.flush_batch()
            return self._retrieve_forward_impl(fid, args)

    def _retrieve_forward_impl(self, fid: str, args: tuple) -> Any:
        gmr = self._gmr_of_fid.get(fid)
        if gmr is None:
            raise GMRDefinitionError(f"{fid} is not materialized")
        if (
            self.fault_policy.enabled
            and self.breaker.quarantined(fid)
            and not self.breaker.probe_eligible(fid)
        ):
            self.stats.degraded_forward_calls += 1
            return self._degraded_value(gmr, fid, args)
        value, valid, exists = gmr.probe(args, fid)
        if valid:
            self.stats.forward_hits += 1
            return value
        if self._db.health.read_only:
            # Storage degraded (Sec. 3.2 transparency): a valid entry was
            # served above, but rematerializing this one would commit a
            # revalidation whose maintenance trail cannot be logged.
            # Answer by direct evaluation, leaving GMR/RRR untouched.
            self.stats.degraded_forward_calls += 1
            return self._degraded_value(gmr, fid, args)
        self.stats.forward_computes += 1
        if not exists and gmr.strategy is Strategy.SNAPSHOT:
            # Created after the last refresh: answer with the normal
            # function; the snapshot extension stays fixed.
            return self._db.call_function(gmr.function(fid), args)
        if not exists and gmr.is_restricted:
            try:
                admitted = self._evaluate_predicate(gmr, args)
            except (FunctionExecutionError, FunctionQuarantinedError):
                # Membership undecidable (predicate failing or
                # quarantined): answer pass-through, admit later.
                self.stats.degraded_forward_calls += 1
                return self._degraded_value(gmr, fid, args)
            if not admitted:
                # Outside the restriction: compute with the normal function.
                return self._db.call_function(gmr.function(fid), args)
        return self._rematerialize(gmr, fid, args)

    def force_invalidate_all(self, gmr: GMR) -> None:
        """Invalidate every entry of ``gmr`` and drop the corresponding
        RRR entries and ObjDepFct markings.

        This is the starting state of the paper's Figure 10 ``Lazy``
        configuration: "all materialized volume results had been
        invalidated before the benchmark was started — this causes the
        RRR and the sets ObjDepFct to be empty with respect to
        ⟨⟨volume⟩⟩".

        Runs under the object base's update lock (a no-op
        single-threaded): it mutates the RRR and GMR validity bits,
        which must be serialized against a concurrent worker-pool
        drain."""
        with self._maint_lock, self._all_shards():
            fids = set(gmr.fids)
            stale = [
                (oid, fid, args)
                for oid, fid, args in self._rrr.triples()
                if fid in fids
            ]
            for oid, fid, args in stale:
                self._rrr_remove(oid, fid, args)
            deferred = gmr.strategy is Strategy.DEFERRED
            for fid in gmr.fids:
                changed = gmr.mark_invalid_many(gmr.args(), fid)
                if deferred:
                    for args in changed:
                        self._scheduler_for(args).schedule(gmr, fid, args)

    def revalidate(self, gmr: GMR, fid: str | None = None) -> int:
        """Rematerialize every invalid entry (the paper's low-load sweep).

        Returns the number of entries actually revalidated; entries
        whose function fails or is quarantined stay invalid/ERROR (a
        bounded retry is scheduled) instead of aborting the sweep.
        """
        with self._maint_lock, self._all_shards():
            count = 0
            fids = [fid] if fid is not None else gmr.fids
            for function_fid in fids:
                for args in list(gmr.invalid_args(function_fid)):
                    if gmr.lookup(args) is None:
                        continue
                    if not self._args_alive(args):
                        # A blind row: its argument object was deleted
                        # after the entry had been lazily invalidated
                        # (Sec. 4.2's lazy maintenance) — dropped here.
                        gmr.remove_row(args)
                        self.stats.blind_rows_removed += 1
                        continue
                    if self._remat_or_degrade(gmr, function_fid, args):
                        count += 1
            return count

    def vacuum(self, gmr: GMR | None = None) -> int:
        """Remove blind rows (rows over deleted argument objects).

        The paper's alternative to lazy cleanup is "a periodic
        reorganization"; this is that sweep, usable on one GMR or all.

        Runs under the object base's update lock (a no-op
        single-threaded): ``remove_row`` mutates shared index
        structures (B+-tree / grid file, page store), and per-entry
        stripe locks do not serialize cross-entry index mutation
        against a concurrent worker-pool drain.
        """
        with self._maint_lock, self._all_shards():
            removed = 0
            targets = [gmr] if gmr is not None else list(self._gmrs.values())
            for target in targets:
                for args in target.args():
                    if not self._args_alive(args):
                        target.remove_row(args)
                        removed += 1
            self.stats.blind_rows_removed += removed
            return removed

    def verify_lockstep(self) -> list[str]:
        """Check the RRR ↔ ObjDepFct lockstep invariant (Sec. 5.2).

        Every live object's ``ObjDepFct`` markings must equal the set of
        function ids the RRR holds entries for under that object —
        that equality is what lets updates of unmarked objects skip the
        RRR probe.  Returns human-readable violations (empty = healthy);
        a test/debug helper like :meth:`GMR.check_consistency`.
        """
        from_rrr: dict[Oid, set[str]] = {}
        for oid, fid, _args in self._rrr.triples():
            from_rrr.setdefault(oid, set()).add(fid)
        objects = self._db.objects
        violations: list[str] = []
        for oid in objects.oids():
            expected = from_rrr.get(oid, set())
            marked = set(objects.get(oid).obj_dep_fct)
            if marked != expected:
                violations.append(
                    f"{oid}: ObjDepFct {sorted(marked)} != "
                    f"RRR functions {sorted(expected)}"
                )
        return violations

    def refresh_snapshot(self, gmr: GMR) -> int:
        """Recompute a snapshot GMR against the current object base.

        Drops the old extension and repopulates from the current type
        extensions (the Adiba/Lindsay periodic refresh).  Returns the new
        row count.

        Runs under the object base's update lock (a no-op
        single-threaded): the drop-and-repopulate mutates shared index
        structures and must not interleave with a worker-pool drain.
        """
        if gmr.strategy is not Strategy.SNAPSHOT:
            raise GMRDefinitionError(
                f"{gmr.name} is not a snapshot GMR; use revalidate instead"
            )
        with self._maint_lock, self._all_shards():
            for args in gmr.args():
                gmr.remove_row(args)
            self._populate(gmr)
            return len(gmr)

    def backward_query(
        self,
        fid: str,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[tuple[Any, tuple]]:
        """A backward range query over ``fid``'s results.

        All results must be valid for the answer to be complete, so
        invalid entries are rematerialized first (this is why lazy and
        immediate strategies cost the same for backward-query-only mixes,
        Fig. 13).

        Entries the guarded sweep cannot heal (persistent ERROR,
        quarantined function) are completed by direct evaluation —
        completeness admits no gaps.  A function that cannot be
        evaluated at all fails the query loudly with
        :class:`FunctionExecutionError` rather than silently dropping
        rows from the answer.

        Backward queries always run under the object base's update
        lock (a no-op single-threaded): the revalidating sweep and the
        range scan must see one consistent extension.
        """
        with self._maint_lock, self._all_shards():
            return self._backward_query_impl(
                fid,
                low,
                high,
                include_low=include_low,
                include_high=include_high,
            )

    def _backward_query_impl(
        self,
        fid: str,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[tuple[Any, tuple]]:
        if self.batching:
            self.flush_batch()
        gmr = self._gmr_of_fid.get(fid)
        if gmr is None:
            raise GMRDefinitionError(f"{fid} is not materialized")
        degraded: list[tuple[Any, tuple]] = []
        if gmr.strategy is not Strategy.SNAPSHOT:
            self.revalidate(gmr, fid)
            for args in sorted(gmr.invalid_args(fid), key=repr):
                if gmr.lookup(args) is None or not self._args_alive(args):
                    continue
                value = self._degraded_value(gmr, fid, args)
                self.stats.degraded_forward_calls += 1
                if in_range(
                    value,
                    low,
                    high,
                    include_low=include_low,
                    include_high=include_high,
                ):
                    degraded.append((value, args))
        results = list(
            gmr.backward(
                fid, low, high, include_low=include_low, include_high=include_high
            )
        )
        if degraded:
            results.extend(degraded)
            results.sort(key=lambda pair: pair[0])
        return results
