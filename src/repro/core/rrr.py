"""The Reverse Reference Relation (Def. 4.1).

The RRR is a set of tuples ``[O: OID, F: FunctionId, A: ⟨OID⟩]``: object
``O`` has been accessed during the materialization of ``F`` with argument
list ``A``.  Because references in the object base are uni-directional,
the RRR is what lets the GMR manager find all materialized results an
updated object influences.

Physically the RRR is keyed by ``O`` (every algorithm in Sec. 4 starts
from "foreach triple [o, f, ⟨...⟩] in RRR"); each object's entry bucket
is placed on a simulated page so RRR lookups carry an I/O charge — the
lookup penalty the paper's Sec. 5.2 optimisation exists to avoid.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.gom.oid import Oid
from repro.storage.pages import BufferManager, PageStore, Placement

_ENTRY_SIZE = 48


class ReverseReferenceRelation:
    """Maps objects to the materializations that used them."""

    def __init__(
        self,
        page_store: PageStore | None = None,
        buffer: BufferManager | None = None,
    ) -> None:
        self._pages = page_store
        self._buffer = buffer
        # oid → fid → {args: marked}.  The marked flag implements the
        # paper's *second chance* variant of Sec. 4.1: instead of removing
        # an entry in step 1 of the maintenance algorithms, it is marked;
        # a re-insertion during rematerialization clears the mark, and an
        # entry still marked at the next invalidation is a genuine
        # leftover and is dropped.
        self._entries: dict[Oid, dict[str, dict[tuple, bool]]] = {}
        self._placements: dict[Oid, Placement] = {}
        self._size = 0
        #: Total probes (per-object bucket accesses).  Every maintenance
        #: or lookup call charges exactly one probe — this is the unit
        #: the paper's Sec. 5 cost model charges per elementary update,
        #: and the quantity the batching pipeline drives down.
        self.probes = 0

    def __len__(self) -> int:
        return self._size

    def _touch(self, oid: Oid, *, write: bool = False) -> None:
        self.probes += 1
        if self._pages is None or self._buffer is None:
            return
        placement = self._placements.get(oid)
        if placement is None:
            placement = self._pages.place("RRR", _ENTRY_SIZE)
            self._placements[oid] = placement
        self._buffer.touch(placement.page_id, write=write)

    # -- maintenance -----------------------------------------------------------

    def insert(self, oid: Oid, fid: str, args: tuple) -> bool:
        """Insert ``[oid, fid, args]`` (if not present; clears any mark).

        Returns True when this is the first entry of ``fid`` for ``oid``
        — the caller then adds ``fid`` to the object's ``ObjDepFct``.
        """
        self._touch(oid, write=True)
        by_fct = self._entries.setdefault(oid, {})
        bucket = by_fct.get(fid)
        if bucket is None:
            by_fct[fid] = {args: False}
            self._size += 1
            return True
        if args not in bucket:
            bucket[args] = False
            self._size += 1
        else:
            bucket[args] = False  # re-used after an update: second chance
        return False

    def remove(self, oid: Oid, fid: str, args: tuple) -> bool:
        """Remove one triple; returns True when ``fid`` has no entries left
        for ``oid`` (the caller then removes the ``ObjDepFct`` marking)."""
        self._touch(oid, write=True)
        by_fct = self._entries.get(oid)
        if by_fct is None:
            return False
        bucket = by_fct.get(fid)
        if bucket is None or args not in bucket:
            return False
        del bucket[args]
        self._size -= 1
        if not bucket:
            del by_fct[fid]
            if not by_fct:
                del self._entries[oid]
            return True
        return False

    def pop_args(self, oid: Oid, fid: str) -> set[tuple]:
        """Remove and return every argument list of ``fid`` for ``oid``."""
        self._touch(oid, write=True)
        by_fct = self._entries.get(oid)
        if by_fct is None:
            return set()
        bucket = by_fct.pop(fid, None)
        if bucket is None:
            return set()
        self._size -= len(bucket)
        if not by_fct:
            del self._entries[oid]
        return set(bucket)

    def pop_args_grouped(
        self, oid: Oid, fids: Iterable[str]
    ) -> dict[str, set[tuple]]:
        """Grouped :meth:`pop_args`: one bucket walk for a whole wave.

        Removes and returns the argument lists of every ``fid`` in one
        pass over the object's entry bucket — the invalidation wave's
        batch probe.  Cost accounting is identical to the per-fid loop
        it replaces: one probe (and one page touch) is charged per
        function, exactly like N calls to :meth:`pop_args`, so RRR probe
        counts stay comparable across code paths.
        """
        popped: dict[str, set[tuple]] = {}
        by_fct = self._entries.get(oid)
        for fid in fids:
            self._touch(oid, write=True)
            if by_fct is None:
                popped[fid] = set()
                continue
            bucket = by_fct.pop(fid, None)
            if bucket is None:
                popped[fid] = set()
                continue
            self._size -= len(bucket)
            popped[fid] = set(bucket)
        if by_fct is not None and not by_fct:
            del self._entries[oid]
        return popped

    def mark_all(self, oid: Oid, fid: str) -> set[tuple]:
        """Second-chance step 1: mark (rather than remove) the entries.

        Returns the argument lists that were *unmarked* — those are the
        ones the caller processes; entries already marked are stale
        leftovers handled by :meth:`pop_marked`.
        """
        self._touch(oid, write=True)
        by_fct = self._entries.get(oid)
        if by_fct is None:
            return set()
        bucket = by_fct.get(fid)
        if bucket is None:
            return set()
        fresh = {args for args, marked in bucket.items() if not marked}
        for args in fresh:
            bucket[args] = True
        return fresh

    def pop_marked(self, oid: Oid, fid: str) -> set[tuple]:
        """Remove and return entries still marked from a prior round."""
        self._touch(oid, write=True)
        by_fct = self._entries.get(oid)
        if by_fct is None:
            return set()
        bucket = by_fct.get(fid)
        if bucket is None:
            return set()
        stale = {args for args, marked in bucket.items() if marked}
        for args in stale:
            del bucket[args]
        self._size -= len(stale)
        if not bucket:
            del by_fct[fid]
            if not by_fct:
                del self._entries[oid]
        return stale

    def is_marked(self, oid: Oid, fid: str, args: tuple) -> bool:
        by_fct = self._entries.get(oid)
        if by_fct is None:
            return False
        bucket = by_fct.get(fid)
        return bool(bucket and bucket.get(args, False))

    def pop_object(self, oid: Oid) -> dict[str, set[tuple]]:
        """Remove and return all entries of ``oid`` (used by forget_object)."""
        self._touch(oid, write=True)
        by_fct = self._entries.pop(oid, None)
        if by_fct is None:
            return {}
        self._size -= sum(len(bucket) for bucket in by_fct.values())
        return {fid: set(bucket) for fid, bucket in by_fct.items()}

    # -- lookups -----------------------------------------------------------------

    def fids_of(self, oid: Oid) -> set[str]:
        self._touch(oid)
        by_fct = self._entries.get(oid)
        return set(by_fct) if by_fct else set()

    def args_of(self, oid: Oid, fid: str) -> set[tuple]:
        self._touch(oid)
        by_fct = self._entries.get(oid)
        if by_fct is None:
            return set()
        return set(by_fct.get(fid, {}))

    def has_entries(self, oid: Oid) -> bool:
        self._touch(oid)
        return oid in self._entries

    def triples(self) -> Iterator[tuple[Oid, str, tuple]]:
        """All ``[O, F, A]`` triples (for tests and figure reproduction)."""
        for oid, by_fct in self._entries.items():
            for fid, buckets in by_fct.items():
                for args in buckets:
                    yield oid, fid, args
