"""Per-function circuit breaker (quarantine of failing user code).

After ``FaultPolicy.failure_threshold`` *consecutive* guard failures a
function id is quarantined: its GMR demotes to pass-through — forward
queries answer by direct evaluation (correct by Sec. 3.2 transparency),
updates become mark-only — and no further body invocations happen on
the maintenance path.  Once ``FaultPolicy.cooldown`` has elapsed, the
next execution request becomes the *probe* that half-opens the breaker:
probe success closes it (normal maintenance resumes), probe failure
re-opens it and restarts the cooldown.

The breaker is keyed by function id, which includes the pseudo function
ids of restriction predicates — a crashing predicate quarantines
exactly like a crashing function.

State transitions (serialized by an internal lock; with a worker pool
the probe of one thread and the failure record of another cannot race
the same entry)::

    CLOSED --K consecutive failures--> OPEN
    OPEN   --cooldown elapsed, acquire()--> HALF_OPEN (the probe runs)
    HALF_OPEN --success--> CLOSED        --failure--> OPEN (new cooldown)

Breaker state is part of the durability contract: it round-trips
through checkpoint/recover (cooldowns as *remaining* durations, since
monotonic clocks do not survive a process), so a crash cannot resurrect
a quarantined function as healthy.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.core.guard import FaultPolicy


class BreakerState(Enum):
    """Where one function's breaker is in its lifecycle."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class BreakerDecision:
    """Outcome of :meth:`CircuitBreaker.acquire`."""

    allowed: bool
    #: The call (if allowed) is the half-open probe of an open breaker.
    probe: bool = False


@dataclass
class _Entry:
    consecutive_failures: int = 0
    state: BreakerState = BreakerState.CLOSED
    #: Clock reading when the breaker (re-)opened.
    opened_at: float = 0.0
    #: Lifetime counters (observability; not part of the state machine).
    total_failures: int = 0
    times_opened: int = 0


class CircuitBreaker:
    """Consecutive-failure breaker over function ids."""

    def __init__(
        self,
        policy: FaultPolicy,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy
        self.clock = clock
        self._entries: dict[str, _Entry] = {}
        #: Serializes state transitions.  Reentrant because the
        #: ``on_transition`` hook (tracing/metrics) fires inside the
        #: critical section and must be free to query breaker state.
        self._lock = threading.RLock()
        #: Optional hook ``on_transition(fid, old_state, new_state)`` —
        #: the manager wires this to the trace layer / metrics registry.
        self.on_transition: (
            Callable[[str, BreakerState, BreakerState], None] | None
        ) = None

    def _transitioned(
        self, fid: str, old: BreakerState, new: BreakerState
    ) -> None:
        if self.on_transition is not None and old is not new:
            self.on_transition(fid, old, new)

    def _entry(self, fid: str) -> _Entry:
        entry = self._entries.get(fid)
        if entry is None:
            entry = self._entries[fid] = _Entry()
        return entry

    # -- queries ---------------------------------------------------------------

    def state(self, fid: str) -> BreakerState:
        entry = self._entries.get(fid)
        return entry.state if entry is not None else BreakerState.CLOSED

    def quarantined(self, fid: str) -> bool:
        """Whether ``fid`` is currently quarantined (breaker not closed)."""
        return self.state(fid) is not BreakerState.CLOSED

    def probe_eligible(self, fid: str) -> bool:
        """An open breaker whose cooldown has elapsed: the next acquire
        becomes the half-open probe."""
        entry = self._entries.get(fid)
        if entry is None or entry.state is not BreakerState.OPEN:
            return False
        return self.clock() - entry.opened_at >= self.policy.cooldown

    def seconds_until_probe(self, fid: str) -> float:
        """Remaining cooldown (0.0 when closed or already eligible)."""
        entry = self._entries.get(fid)
        if entry is None or entry.state is not BreakerState.OPEN:
            return 0.0
        remaining = self.policy.cooldown - (self.clock() - entry.opened_at)
        return max(0.0, remaining)

    def quarantined_fids(self) -> list[str]:
        return sorted(
            fid
            for fid, entry in self._entries.items()
            if entry.state is not BreakerState.CLOSED
        )

    def failures(self, fid: str) -> int:
        entry = self._entries.get(fid)
        return entry.consecutive_failures if entry is not None else 0

    # -- the state machine -----------------------------------------------------

    def acquire(self, fid: str) -> BreakerDecision:
        """Ask to execute ``fid``'s body once.

        ``CLOSED`` allows; ``OPEN`` past its cooldown transitions to
        ``HALF_OPEN`` and allows the probe; otherwise execution is
        denied.  The caller must resolve an allowed call by invoking
        :meth:`record_success` or :meth:`record_failure`.
        """
        with self._lock:
            entry = self._entries.get(fid)
            if entry is None or entry.state is BreakerState.CLOSED:
                return BreakerDecision(allowed=True)
            if entry.state is BreakerState.OPEN:
                if self.clock() - entry.opened_at >= self.policy.cooldown:
                    entry.state = BreakerState.HALF_OPEN
                    self._transitioned(
                        fid, BreakerState.OPEN, BreakerState.HALF_OPEN
                    )
                    return BreakerDecision(allowed=True, probe=True)
                return BreakerDecision(allowed=False)
            # HALF_OPEN: a probe is already in flight (or was interrupted
            # by a BaseException mid-call); allow it to resolve.
            return BreakerDecision(allowed=True, probe=True)

    def record_success(self, fid: str) -> bool:
        """Note a successful execution; returns True if this closed an
        open (half-open) breaker."""
        with self._lock:
            entry = self._entries.get(fid)
            if entry is None:
                return False
            old = entry.state
            closed = old is not BreakerState.CLOSED
            entry.state = BreakerState.CLOSED
            entry.consecutive_failures = 0
            self._transitioned(fid, old, BreakerState.CLOSED)
            return closed

    def record_failure(self, fid: str) -> bool:
        """Note a failed execution; returns True if this *opened* the
        breaker (threshold reached, or a half-open probe failed)."""
        with self._lock:
            entry = self._entry(fid)
            entry.consecutive_failures += 1
            entry.total_failures += 1
            if entry.state is BreakerState.HALF_OPEN:
                entry.state = BreakerState.OPEN
                entry.opened_at = self.clock()
                entry.times_opened += 1
                self._transitioned(
                    fid, BreakerState.HALF_OPEN, BreakerState.OPEN
                )
                return True
            if (
                entry.state is BreakerState.CLOSED
                and entry.consecutive_failures >= self.policy.failure_threshold
            ):
                entry.state = BreakerState.OPEN
                entry.opened_at = self.clock()
                entry.times_opened += 1
                self._transitioned(fid, BreakerState.CLOSED, BreakerState.OPEN)
                return True
            return False

    # -- manual controls -------------------------------------------------------

    def trip(self, fid: str) -> None:
        """Quarantine ``fid`` immediately (operator override)."""
        with self._lock:
            entry = self._entry(fid)
            old = entry.state
            entry.state = BreakerState.OPEN
            entry.opened_at = self.clock()
            entry.times_opened += 1
            self._transitioned(fid, old, BreakerState.OPEN)

    def reset(self, fid: str) -> None:
        """Close ``fid``'s breaker and forget its failure streak."""
        with self._lock:
            entry = self._entries.get(fid)
            if entry is not None:
                old = entry.state
                entry.state = BreakerState.CLOSED
                entry.consecutive_failures = 0
                self._transitioned(fid, old, BreakerState.CLOSED)

    # -- persistence -----------------------------------------------------------

    def dump_state(self) -> dict:
        """A portable snapshot (cooldowns as *remaining* durations)."""
        with self._lock:
            return self._dump_state_locked()

    def _dump_state_locked(self) -> dict:
        now = self.clock()
        fids = {}
        for fid, entry in self._entries.items():
            if (
                entry.state is BreakerState.CLOSED
                and entry.consecutive_failures == 0
                and entry.total_failures == 0
            ):
                continue  # indistinguishable from an absent entry
            state = entry.state
            if state is BreakerState.HALF_OPEN:
                # A probe cannot be in flight at a checkpoint boundary;
                # an interrupted one is conservatively re-opened.
                state = BreakerState.OPEN
            record = {
                "state": state.value,
                "consecutive_failures": entry.consecutive_failures,
                "total_failures": entry.total_failures,
                "times_opened": entry.times_opened,
            }
            if state is BreakerState.OPEN:
                record["cooldown_remaining"] = max(
                    0.0, self.policy.cooldown - (now - entry.opened_at)
                )
            fids[fid] = record
        return {"fids": fids}

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`dump_state` snapshot (replaces all entries)."""
        with self._lock:
            now = self.clock()
            self._entries = {}
            for fid, record in state.get("fids", {}).items():
                entry = _Entry(
                    consecutive_failures=record.get("consecutive_failures", 0),
                    state=BreakerState(record.get("state", "closed")),
                    total_failures=record.get("total_failures", 0),
                    times_opened=record.get("times_opened", 0),
                )
                if entry.state is BreakerState.OPEN:
                    remaining = float(record.get("cooldown_remaining", 0.0))
                    entry.opened_at = now - (self.policy.cooldown - remaining)
                self._entries[fid] = entry
