"""SchemaDepFct bookkeeping (Def. 5.2).

Maps each elementary update operation ``t.set_A`` — represented as the
``(declaring type, attribute)`` pair, with the pseudo-attribute
``__elements__`` standing for set/list membership updates — to the set of
materialized functions whose ``RelAttr`` contains it.

Functions whose bodies could not be analyzed statically are kept in an
*always-relevant* set that every lookup includes, so no invalidation is
ever missed.

:class:`UpdatePlan` / :class:`FidPlan` are the precompiled flat form of
the same information: one frozen record per ``(declaring type, attr)``
update key and one per function id, so the per-update hot path costs a
single dict lookup instead of rebuilding SchemaDepFct sets and chasing
strategy attributes on every notification.  The plans are compiled and
cached by :class:`~repro.core.manager.GMRManager`; :attr:`version` lets
the manager detect index mutations and drop stale plans.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.function_registry import FunctionInfo

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.gmr import GMR


class FidPlan:
    """Precompiled per-fid invalidation dispatch record.

    Flattens everything :meth:`GMRManager.invalidate` would otherwise
    re-derive per wave per fid — the owning GMR, whether the fid is the
    GMR's restriction-predicate pseudo function, and the strategy
    branch (eager remat / mark-only / mark-and-schedule).
    """

    __slots__ = ("fid", "gmr", "is_predicate", "marks_only", "deferred")

    def __init__(
        self,
        fid: str,
        gmr: "GMR",
        *,
        is_predicate: bool,
        marks_only: bool,
        deferred: bool,
    ) -> None:
        self.fid = fid
        self.gmr = gmr
        self.is_predicate = is_predicate
        self.marks_only = marks_only
        self.deferred = deferred

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = (
            "predicate"
            if self.is_predicate
            else ("deferred" if self.deferred else
                  "lazy" if self.marks_only else "eager")
        )
        return f"FidPlan({self.fid!r}, {kind})"


class UpdatePlan:
    """Precompiled invalidation plan for one elementary update key.

    ``fids`` is the cached ``SchemaDepFct(decl_type.set_attr)`` result;
    ``entries`` the matching :class:`FidPlan` records in deterministic
    (sorted-fid) order.  Compiled lazily per update key and cached by
    the manager until the dependency index or GMR registry changes.
    """

    __slots__ = ("key", "fids", "entries")

    def __init__(
        self,
        key: tuple[str, str],
        fids: frozenset[str],
        entries: tuple[FidPlan, ...],
    ) -> None:
        self.key = key
        self.fids = fids
        self.entries = entries

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"UpdatePlan({self.key!r}, fids={sorted(self.fids)})"


class DependencyIndex:
    """``SchemaDepFct`` over all functions in all GMRs."""

    def __init__(self) -> None:
        self._by_update: dict[tuple[str, str], set[str]] = {}
        self._always: set[str] = set()
        self._pairs_by_fid: dict[str, frozenset[tuple[str, str]]] = {}
        #: Monotonic mutation counter.  Plan caches remember the version
        #: they were compiled against and rebuild on mismatch, so even
        #: direct index mutations can never leave a stale plan behind.
        self.version = 0

    def add_function(self, info: FunctionInfo) -> None:
        self.add_pairs(info.fid, info.relevant_attrs)

    def add_pairs(
        self, fid: str, pairs: frozenset[tuple[str, str]] | None
    ) -> None:
        """Register ``RelAttr`` pairs for ``fid`` (None = unknown)."""
        self.version += 1
        if pairs is None:
            self._always.add(fid)
            self._pairs_by_fid[fid] = frozenset()
            return
        self._pairs_by_fid[fid] = pairs
        for pair in pairs:
            self._by_update.setdefault(pair, set()).add(fid)

    def remove_function(self, fid: str) -> None:
        self.version += 1
        self._always.discard(fid)
        pairs = self._pairs_by_fid.pop(fid, frozenset())
        for pair in pairs:
            bucket = self._by_update.get(pair)
            if bucket is not None:
                bucket.discard(fid)
                if not bucket:
                    del self._by_update[pair]

    def schema_dep_fct(self, decl_type: str, attr: str) -> frozenset[str]:
        """``SchemaDepFct(decl_type.set_attr)`` — Def. 5.2."""
        bucket = self._by_update.get((decl_type, attr))
        if bucket is None and not self._always:
            return frozenset()
        result = set(self._always)
        if bucket:
            result |= bucket
        return frozenset(result)

    def relevant_attrs(self, fid: str) -> frozenset[tuple[str, str]]:
        return self._pairs_by_fid.get(fid, frozenset())

    def is_always_relevant(self, fid: str) -> bool:
        return fid in self._always
