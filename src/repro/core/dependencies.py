"""SchemaDepFct bookkeeping (Def. 5.2).

Maps each elementary update operation ``t.set_A`` — represented as the
``(declaring type, attribute)`` pair, with the pseudo-attribute
``__elements__`` standing for set/list membership updates — to the set of
materialized functions whose ``RelAttr`` contains it.

Functions whose bodies could not be analyzed statically are kept in an
*always-relevant* set that every lookup includes, so no invalidation is
ever missed.
"""

from __future__ import annotations

from repro.core.function_registry import FunctionInfo


class DependencyIndex:
    """``SchemaDepFct`` over all functions in all GMRs."""

    def __init__(self) -> None:
        self._by_update: dict[tuple[str, str], set[str]] = {}
        self._always: set[str] = set()
        self._pairs_by_fid: dict[str, frozenset[tuple[str, str]]] = {}

    def add_function(self, info: FunctionInfo) -> None:
        self.add_pairs(info.fid, info.relevant_attrs)

    def add_pairs(
        self, fid: str, pairs: frozenset[tuple[str, str]] | None
    ) -> None:
        """Register ``RelAttr`` pairs for ``fid`` (None = unknown)."""
        if pairs is None:
            self._always.add(fid)
            self._pairs_by_fid[fid] = frozenset()
            return
        self._pairs_by_fid[fid] = pairs
        for pair in pairs:
            self._by_update.setdefault(pair, set()).add(fid)

    def remove_function(self, fid: str) -> None:
        self._always.discard(fid)
        pairs = self._pairs_by_fid.pop(fid, frozenset())
        for pair in pairs:
            bucket = self._by_update.get(pair)
            if bucket is not None:
                bucket.discard(fid)
                if not bucket:
                    del self._by_update[pair]

    def schema_dep_fct(self, decl_type: str, attr: str) -> frozenset[str]:
        """``SchemaDepFct(decl_type.set_attr)`` — Def. 5.2."""
        bucket = self._by_update.get((decl_type, attr))
        if bucket is None and not self._always:
            return frozenset()
        result = set(self._always)
        if bucket:
            result |= bucket
        return frozenset(result)

    def relevant_attrs(self, fid: str) -> frozenset[tuple[str, str]]:
        return self._pairs_by_fid.get(fid, frozenset())

    def is_always_relevant(self, fid: str) -> bool:
        return fid in self._always
