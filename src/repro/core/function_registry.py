"""Registry of materializable functions.

A materializable function ``f : t1, ..., tn → tn+1`` is a side-effect
free, type-associated operation: the receiver type is the first argument
type.  Registration computes ``RelAttr(f)`` (Def. 5.1) with the static
analysis of the Appendix; bodies outside the analyzable subset get
``relevant_attrs = None``, which the dependency index treats as
"relevant to every update" — sound, never unsound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.core.analysis.extraction import FunctionAnalyzer
from repro.core.analysis.python_frontend import lower_callable
from repro.errors import GMRDefinitionError, UnsupportedConstructError

if TYPE_CHECKING:  # pragma: no cover
    from repro.gom.database import ObjectBase


def function_id(type_name: str, op_name: str) -> str:
    return f"{type_name}.{op_name}"


@dataclass(frozen=True)
class FunctionInfo:
    """Metadata of one registered materializable function."""

    fid: str
    type_name: str
    op_name: str
    arg_types: tuple[str, ...]
    result_type: str
    #: ``RelAttr(f)`` as (declaring type, attribute) pairs, or ``None``
    #: when the body could not be analyzed (treated as "everything").
    relevant_attrs: frozenset[tuple[str, str]] | None

    @property
    def short_name(self) -> str:
        return self.op_name

    @property
    def arity(self) -> int:
        return len(self.arg_types)


class FunctionRegistry:
    """Registers functions and runs the RelAttr analysis once each."""

    def __init__(self, db: "ObjectBase") -> None:
        self._db = db
        self._functions: dict[str, FunctionInfo] = {}
        self._analyzer: FunctionAnalyzer | None = None

    @property
    def analyzer(self) -> FunctionAnalyzer:
        if self._analyzer is None:
            schema = self._db.schema

            def provide(decl_type: str, op_name: str):
                _, operation = schema.resolve_operation(decl_type, op_name)
                return lower_callable(operation.body)

            self._analyzer = FunctionAnalyzer(schema, provide)
        return self._analyzer

    def register(
        self,
        type_name: str,
        op_name: str,
        *,
        relevant_attrs: Iterable[tuple[str, str]] | None = None,
    ) -> FunctionInfo:
        """Register ``type_name.op_name`` as a materializable function.

        ``relevant_attrs`` overrides the static analysis (the escape hatch
        for bodies the analyzer cannot handle, mirroring a data type
        implementor supplying the dependency information by hand).
        """
        schema = self._db.schema
        decl_type, operation = schema.resolve_operation(type_name, op_name)
        fid = function_id(decl_type, op_name)
        existing = self._functions.get(fid)
        if existing is not None:
            return existing
        if operation.result_type == "void":
            raise GMRDefinitionError(
                f"{fid} returns void and cannot be materialized"
            )
        if relevant_attrs is not None:
            pairs: frozenset[tuple[str, str]] | None = frozenset(relevant_attrs)
        else:
            try:
                pairs = self.analyzer.relevant_attributes(decl_type, op_name).pairs
            except UnsupportedConstructError:
                pairs = None
        info = FunctionInfo(
            fid=fid,
            type_name=decl_type,
            op_name=op_name,
            arg_types=(decl_type,) + tuple(operation.param_types),
            result_type=operation.result_type,
            relevant_attrs=pairs,
        )
        self._functions[fid] = info
        return info

    def get(self, fid: str) -> FunctionInfo:
        try:
            return self._functions[fid]
        except KeyError:
            raise GMRDefinitionError(f"unknown function {fid}") from None

    def lookup(self, type_name: str, op_name: str) -> FunctionInfo | None:
        return self._functions.get(function_id(type_name, op_name))

    def __contains__(self, fid: str) -> bool:
        return fid in self._functions

    def all(self) -> list[FunctionInfo]:
        return list(self._functions.values())
