"""The paper's primary contribution: function materialization.

* :mod:`repro.core.gmr` — Generalized Materialization Relations
  (Defs. 3.1–3.4: consistent / valid / complete extensions);
* :mod:`repro.core.rrr` — the Reverse Reference Relation (Def. 4.1);
* :mod:`repro.core.manager` — the GMR manager (invalidate / new_object /
  forget_object / compensate, lazy and immediate rematerialization,
  retrieval of materialized results);
* :mod:`repro.core.dependencies` — RelAttr / SchemaDepFct bookkeeping
  (Defs. 5.1/5.2), fed by the static analysis in
  :mod:`repro.core.analysis` (the paper's Appendix);
* :mod:`repro.core.compensation` — compensating actions (Defs. 5.4/5.5);
* :mod:`repro.core.restricted` — restricted GMRs (Sec. 6).
"""

from repro.core.batch import FlushReport
from repro.core.breaker import BreakerState, CircuitBreaker
from repro.core.function_registry import FunctionInfo, FunctionRegistry
from repro.core.gmr import GMR
from repro.core.guard import ExecutionGuard, FaultPolicy
from repro.core.health import HealthMonitor, HealthState
from repro.core.manager import GMRManager
from repro.core.strategies import Strategy
from repro.core.restricted import Restriction, ValueRestriction, RangeRestriction

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "ExecutionGuard",
    "FaultPolicy",
    "FlushReport",
    "FunctionInfo",
    "FunctionRegistry",
    "GMR",
    "GMRManager",
    "HealthMonitor",
    "HealthState",
    "Strategy",
    "Restriction",
    "ValueRestriction",
    "RangeRestriction",
]
