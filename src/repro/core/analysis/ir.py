"""A small statement/expression IR for analyzable function bodies.

The Python frontend lowers operation bodies into this IR; the extraction
calculus walks it.  The IR deliberately covers only what side-effect-free
GOM functions need: attribute chains, arithmetic/comparisons, operation
calls, conditionals, loops over collections and local assignments.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Expr:
    """Base class of IR expressions."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Const(Expr):
    value: object


@dataclass(frozen=True, slots=True)
class Var(Expr):
    name: str


@dataclass(frozen=True, slots=True)
class Attr(Expr):
    base: Expr
    name: str


@dataclass(frozen=True, slots=True)
class Binary(Expr):
    """Any binary operator — the calculus only unions the operand paths."""

    left: Expr
    right: Expr
    op: str = "?"


@dataclass(frozen=True, slots=True)
class Unary(Expr):
    operand: Expr
    op: str = "?"


@dataclass(frozen=True, slots=True)
class Call(Expr):
    """A call ``receiver.name(args)`` — a GOM operation, a collection
    accessor or (when the receiver is not a database value) a builtin."""

    receiver: Expr | None
    name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True, slots=True)
class Conditional(Expr):
    """``then if cond else other`` — contributes the union of all parts."""

    cond: Expr
    then: Expr
    other: Expr


@dataclass(frozen=True, slots=True)
class Comprehension(Expr):
    """``[element for var in iterable if condition ...]`` (or a
    generator/set comprehension — the calculus treats them alike)."""

    var: str
    iterable: Expr
    conditions: tuple[Expr, ...]
    element: Expr


class Stmt:
    """Base class of IR statements."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Assign(Stmt):
    target: str
    value: Expr


@dataclass(frozen=True, slots=True)
class Return(Stmt):
    value: Expr | None


@dataclass(frozen=True, slots=True)
class ExprStmt(Stmt):
    value: Expr


@dataclass(frozen=True, slots=True)
class If(Stmt):
    cond: Expr
    then: tuple[Stmt, ...]
    orelse: tuple[Stmt, ...] = ()


@dataclass(frozen=True, slots=True)
class ForEach(Stmt):
    var: str
    iterable: Expr
    body: tuple[Stmt, ...]


@dataclass(frozen=True, slots=True)
class FunctionIR:
    """A lowered function body: parameter names (excluding self) + code."""

    params: tuple[str, ...]
    body: tuple[Stmt, ...]
    name: str = "<anonymous>"
