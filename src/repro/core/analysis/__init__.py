"""Static path-extraction analysis (the paper's Appendix).

Determines ``RelAttr(f)`` — the set of ``type.attribute`` pairs a
materialized function may read — by assigning a *path extraction
structure* ``E(S) = (P, R)`` to every syntactic structure ``S`` of the
function body, where ``P`` is a set of path expressions and ``R`` a term
rewriting system of rules ``v → p`` recording variable assignments.
Structures compose with the (left-associative) ``⊗`` operator of
Def. 8.1; called functions are inlined with formal→actual substitution.

The Python frontend lowers a disciplined subset of Python (the style the
domain schemas are written in) to a small IR; bodies outside the subset
raise :class:`~repro.errors.UnsupportedConstructError` and the dependency
layer falls back to treating the function as depending on everything
(sound, never unsound).
"""

from repro.core.analysis.paths import PathExpression
from repro.core.analysis.extraction import (
    ExtractionStructure,
    FunctionAnalyzer,
    RelAttrResult,
)

__all__ = [
    "PathExpression",
    "ExtractionStructure",
    "FunctionAnalyzer",
    "RelAttrResult",
]
