"""The path-extraction calculus ``E(S) = (P, R)`` of the Appendix.

``P`` is the set of path expressions extracted from a syntactic structure
``S`` and ``R`` a term rewriting system of rules ``v → p`` recording
assignments.  Sequences compose with the left-associative ``⊗`` operator
(Def. 8.1); conditionals union their branches; loops bind the loop
variable to "an element of" the iterated path; operation calls inline the
callee's extraction structure under formal→actual substitution.

The analyzer is *conservative*: ``P(f)`` is a superset of the paths a
real invocation evaluates, which is the sound direction for invalidation
(extra entries in ``RelAttr`` can only cause unnecessary, never missing,
invalidations).  Constructs outside the supported subset raise
:class:`~repro.errors.UnsupportedConstructError` and the caller falls
back to an everything-is-relevant assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import UnsupportedConstructError
from repro.core.analysis import ir
from repro.core.analysis.paths import (
    PathExpression,
    Rule,
    rewrite_path,
    rewrite_paths,
)
from repro.gom.types import ELEMENTS_ATTR, TypeKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.gom.schema import Schema

#: Canonical summary roots — callee summaries are stored with these roots
#: so inlining can never collide with caller variable names.
SELF_ROOT = "@self"


def param_root(index: int) -> str:
    return f"@p{index}"


@dataclass(frozen=True)
class ExtractionStructure:
    """``E(S) = (P, R)`` — paths and rewrite rules."""

    paths: frozenset[PathExpression] = frozenset()
    rules: frozenset[Rule] = frozenset()

    @staticmethod
    def of(
        paths: set[PathExpression] | frozenset[PathExpression] = frozenset(),
        rules: set[Rule] | frozenset[Rule] = frozenset(),
    ) -> "ExtractionStructure":
        return ExtractionStructure(frozenset(paths), frozenset(rules))

    def combine(self, other: "ExtractionStructure") -> "ExtractionStructure":
        """The ``⊗`` operator of Def. 8.1 (``self`` happens-before ``other``).

        * ``other``'s paths are rewritten by ``self``'s rules (they may
          start with variables assigned earlier);
        * ``other``'s rules are rewritten likewise;
        * ``self``'s rules for variables re-assigned by ``other`` are
          dropped.
        """
        rewritten_paths = rewrite_paths(other.paths, self.rules)
        rewritten_rules = {
            (variable, rewritten)
            for variable, replacement in other.rules
            for rewritten in rewrite_path(replacement, self.rules)
        }
        reassigned = {variable for variable, _ in other.rules}
        kept = {
            (variable, replacement)
            for variable, replacement in self.rules
            if variable not in reassigned
        }
        return ExtractionStructure(
            frozenset(rewritten_paths) | self.paths,
            frozenset(rewritten_rules) | frozenset(kept),
        )


@dataclass(frozen=True)
class FunctionSummary:
    """Cached analysis of one operation, with canonical roots."""

    paths: frozenset[PathExpression]
    returns: frozenset[PathExpression]
    param_count: int


@dataclass(frozen=True)
class RelAttrResult:
    """The final product: typed attribute pairs plus the raw paths."""

    pairs: frozenset[tuple[str, str]]
    paths: frozenset[PathExpression]


class FunctionAnalyzer:
    """Computes ``RelAttr(f)`` for operations lowered to the IR.

    ``ir_provider(decl_type, op_name)`` must return the
    :class:`~repro.core.analysis.ir.FunctionIR` of the operation (the
    Python frontend provides this) or raise ``UnsupportedConstructError``.
    """

    def __init__(
        self,
        schema: "Schema",
        ir_provider: Callable[[str, str], ir.FunctionIR],
    ) -> None:
        self._schema = schema
        self._provide = ir_provider
        self._summaries: dict[tuple[str, str], FunctionSummary] = {}
        self._visiting: set[tuple[str, str]] = set()

    # -- public API ----------------------------------------------------------

    def relevant_attributes(self, decl_type: str, op_name: str) -> RelAttrResult:
        """``RelAttr(f)`` for ``f = decl_type.op_name`` (Def. 5.1).

        Paths are typed from the declared receiver/parameter types and
        cut into ``(declaring type, attribute)`` pairs of maximal length
        two, exactly as the Appendix prescribes.
        """
        summary = self.summary(decl_type, op_name)
        _, operation = self._schema.resolve_operation(decl_type, op_name)
        env = {SELF_ROOT: decl_type}
        for index, param_type in enumerate(operation.param_types):
            env[param_root(index)] = param_type
        pairs: set[tuple[str, str]] = set()
        for path in summary.paths:
            self._cut_path(path, env, pairs)
        return RelAttrResult(frozenset(pairs), summary.paths)

    def summary(self, decl_type: str, op_name: str) -> FunctionSummary:
        key = (decl_type, op_name)
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        if key in self._visiting:
            raise UnsupportedConstructError(
                f"recursive function {decl_type}.{op_name} cannot be analyzed"
            )
        self._visiting.add(key)
        try:
            summary = self._analyze(decl_type, op_name)
        finally:
            self._visiting.discard(key)
        self._summaries[key] = summary
        return summary

    # -- analysis -------------------------------------------------------------

    def _analyze(self, decl_type: str, op_name: str) -> FunctionSummary:
        function_ir = self._provide(decl_type, op_name)
        _, operation = self._schema.resolve_operation(decl_type, op_name)
        env: dict[str, str] = {"self": decl_type}
        for name, param_type in zip(function_ir.params, operation.param_types):
            env[name] = param_type
        accumulator = ExtractionStructure()
        accumulator, returns = self._extract_block(
            function_ir.body, accumulator, env
        )
        # Canonicalize roots: actual parameter names → @p{i}, self → @self.
        canonical: dict[str, str] = {"self": SELF_ROOT}
        for index, name in enumerate(function_ir.params):
            canonical[name] = param_root(index)

        def canon(paths: frozenset[PathExpression]) -> frozenset[PathExpression]:
            result = set()
            for path in paths:
                root = canonical.get(path.root)
                if root is None:
                    # A path still rooted at a local variable carries no
                    # information about the arguments — drop it.
                    continue
                result.add(PathExpression(root, path.attrs))
            return frozenset(result)

        return FunctionSummary(
            paths=canon(accumulator.paths),
            returns=canon(frozenset(returns)),
            param_count=len(function_ir.params),
        )

    def _extract_block(
        self,
        stmts: tuple[ir.Stmt, ...],
        accumulator: ExtractionStructure,
        env: dict[str, str],
    ) -> tuple[ExtractionStructure, set[PathExpression]]:
        returns: set[PathExpression] = set()
        for stmt in stmts:
            accumulator, stmt_returns = self._extract_stmt(stmt, accumulator, env)
            returns |= stmt_returns
        return accumulator, returns

    def _extract_stmt(
        self,
        stmt: ir.Stmt,
        accumulator: ExtractionStructure,
        env: dict[str, str],
    ) -> tuple[ExtractionStructure, set[PathExpression]]:
        if isinstance(stmt, ir.Assign):
            paths, values = self._extract_expr(stmt.value, accumulator, env)
            structure = ExtractionStructure.of(
                paths, {(stmt.target, value) for value in values}
            )
            return accumulator.combine(structure), set()
        if isinstance(stmt, ir.Return):
            if stmt.value is None:
                return accumulator, set()
            paths, values = self._extract_expr(stmt.value, accumulator, env)
            return accumulator.combine(ExtractionStructure.of(paths)), set(values)
        if isinstance(stmt, ir.ExprStmt):
            paths, _ = self._extract_expr(stmt.value, accumulator, env)
            return accumulator.combine(ExtractionStructure.of(paths)), set()
        if isinstance(stmt, ir.If):
            cond_paths, _ = self._extract_expr(stmt.cond, accumulator, env)
            base = accumulator.combine(ExtractionStructure.of(cond_paths))
            then_acc, then_returns = self._extract_block(stmt.then, base, env)
            else_acc, else_returns = self._extract_block(stmt.orelse, base, env)
            merged = ExtractionStructure(
                then_acc.paths | else_acc.paths,
                then_acc.rules | else_acc.rules,
            )
            return merged, then_returns | else_returns
        if isinstance(stmt, ir.ForEach):
            iter_paths, iter_values = self._extract_expr(
                stmt.iterable, accumulator, env
            )
            element_paths = {value.extend(ELEMENTS_ATTR) for value in iter_values}
            pre = accumulator.combine(
                ExtractionStructure.of(
                    set(iter_paths) | element_paths,
                    {(stmt.var, element) for element in element_paths},
                )
            )
            body_acc, body_returns = self._extract_block(stmt.body, pre, env)
            # Second pass so rules established late in the body feed paths
            # early in the next iteration (a cheap loop fixpoint).
            body_acc, second_returns = self._extract_block(stmt.body, body_acc, env)
            return body_acc, body_returns | second_returns
        raise UnsupportedConstructError(f"unsupported statement {stmt!r}")

    # -- expressions ---------------------------------------------------------------

    def _extract_expr(
        self,
        expr: ir.Expr,
        accumulator: ExtractionStructure,
        env: dict[str, str],
    ) -> tuple[set[PathExpression], set[PathExpression]]:
        """Returns (all extracted paths, paths denoting the value)."""
        if isinstance(expr, ir.Const):
            return set(), set()
        if isinstance(expr, ir.Var):
            variants = rewrite_path(PathExpression(expr.name), accumulator.rules)
            return set(variants), set(variants)
        if isinstance(expr, ir.Attr):
            base_paths, base_values = self._extract_expr(expr.base, accumulator, env)
            values = {value.extend(expr.name) for value in base_values}
            return base_paths | values, values
        if isinstance(expr, ir.Binary):
            left_paths, _ = self._extract_expr(expr.left, accumulator, env)
            right_paths, _ = self._extract_expr(expr.right, accumulator, env)
            return left_paths | right_paths, set()
        if isinstance(expr, ir.Unary):
            paths, _ = self._extract_expr(expr.operand, accumulator, env)
            return paths, set()
        if isinstance(expr, ir.Conditional):
            cond_paths, _ = self._extract_expr(expr.cond, accumulator, env)
            then_paths, then_values = self._extract_expr(expr.then, accumulator, env)
            other_paths, other_values = self._extract_expr(
                expr.other, accumulator, env
            )
            return (
                cond_paths | then_paths | other_paths,
                then_values | other_values,
            )
        if isinstance(expr, ir.Call):
            return self._extract_call(expr, accumulator, env)
        if isinstance(expr, ir.Comprehension):
            return self._extract_comprehension(expr, accumulator, env)
        raise UnsupportedConstructError(f"unsupported expression {expr!r}")

    def _extract_comprehension(
        self,
        expr: ir.Comprehension,
        accumulator: ExtractionStructure,
        env: dict[str, str],
    ) -> tuple[set[PathExpression], set[PathExpression]]:
        """``[e for v in iter if c]`` — like a ForEach with a yielded
        element: the loop variable binds to "an element of" the iterated
        paths, and the produced collection's value paths are the
        element's (so chained comprehension results keep their roots)."""
        iter_paths, iter_values = self._extract_expr(
            expr.iterable, accumulator, env
        )
        element_paths = {value.extend(ELEMENTS_ATTR) for value in iter_values}
        inner = accumulator.combine(
            ExtractionStructure.of(
                set(iter_paths) | element_paths,
                {(expr.var, element) for element in element_paths},
            )
        )
        paths = set(iter_paths) | element_paths
        for condition in expr.conditions:
            condition_paths, _ = self._extract_expr(condition, inner, env)
            paths |= condition_paths
        body_paths, body_values = self._extract_expr(expr.element, inner, env)
        paths |= body_paths
        return paths, set(body_values)

    def _extract_call(
        self,
        expr: ir.Call,
        accumulator: ExtractionStructure,
        env: dict[str, str],
    ) -> tuple[set[PathExpression], set[PathExpression]]:
        arg_results = [
            self._extract_expr(argument, accumulator, env) for argument in expr.args
        ]
        paths: set[PathExpression] = set()
        for arg_paths, _ in arg_results:
            paths |= arg_paths

        if expr.receiver is None:
            # A bare builtin like len(...), sum(...), abs(...).
            if expr.name == "len":
                for _, arg_values in arg_results:
                    for value in arg_values:
                        paths.add(value.extend(ELEMENTS_ATTR))
            return paths, set()

        recv_paths, recv_values = self._extract_expr(expr.receiver, accumulator, env)
        paths |= recv_paths

        values: set[PathExpression] = set()
        resolved = False
        for receiver in recv_values:
            receiver_type = self._type_of_path(receiver, env)
            if receiver_type is None:
                continue
            if expr.name in ("elements", "contains"):
                member = receiver.extend(ELEMENTS_ATTR)
                paths.add(member)
                if expr.name == "elements":
                    values.add(member)
                resolved = True
                continue
            definition = self._schema.type(receiver_type)
            if definition.kind is TypeKind.TUPLE and self._schema.has_operation(
                receiver_type, expr.name
            ):
                callee_decl, _ = self._schema.resolve_operation(
                    receiver_type, expr.name
                )
                summary = self.summary(callee_decl, expr.name)
                substitution: set[Rule] = {(SELF_ROOT, receiver)}
                callee_params = {SELF_ROOT}
                for index in range(summary.param_count):
                    root = param_root(index)
                    callee_params.add(root)
                    if index < len(arg_results):
                        for arg_value in arg_results[index][1]:
                            substitution.add((root, arg_value))
                inlined = rewrite_paths(summary.paths, substitution)
                paths |= {
                    path for path in inlined if path.root not in callee_params
                }
                returned = rewrite_paths(summary.returns, substitution)
                values |= {
                    path for path in returned if path.root not in callee_params
                }
                resolved = True
                continue
            if expr.name.startswith("set_") or expr.name in ("insert", "remove"):
                # An elementary update — reads only its argument expressions
                # (already collected); appears in non-materialized helpers.
                resolved = True
                continue
            # An accessor spelled as a call, e.g. self.X() for attribute X.
            try:
                self._schema.attribute(receiver_type, expr.name)
            except Exception:
                continue
            member = receiver.extend(expr.name)
            paths.add(member)
            values.add(member)
            resolved = True

        if not resolved and recv_values:
            typable = any(
                self._type_of_path(value, env) is not None for value in recv_values
            )
            if typable:
                raise UnsupportedConstructError(
                    f"cannot resolve call .{expr.name}(...) on a database value"
                )
        return paths, values

    # -- typing --------------------------------------------------------------------

    def _type_of_path(self, path: PathExpression, env: dict[str, str]) -> str | None:
        current = env.get(path.root)
        if current is None:
            return None
        for attribute in path.attrs:
            definition = self._schema.type(current)
            if attribute == ELEMENTS_ATTR:
                if not definition.is_collection():
                    return None
                current = definition.element_type
                if current is None:
                    return None
                continue
            try:
                current = self._schema.attribute(current, attribute).type_name
            except Exception:
                return None
        return current

    def _cut_path(
        self,
        path: PathExpression,
        env: dict[str, str],
        pairs: set[tuple[str, str]],
    ) -> None:
        """Type a path and cut it into length-≤2 pairs (Appendix, last step)."""
        current = env.get(path.root)
        if current is None:
            return
        for attribute in path.attrs:
            if not self._schema.has_type(current):
                return
            definition = self._schema.type(current)
            if attribute == ELEMENTS_ATTR:
                if not definition.is_collection():
                    return
                pairs.add((current, ELEMENTS_ATTR))
                current = definition.element_type or ""
                continue
            try:
                declaring = self._schema.attribute_declaring_type(current, attribute)
            except Exception:
                return
            pairs.add((declaring, attribute))
            current = self._schema.attribute(current, attribute).type_name
