"""Lowering Python operation bodies to the analysis IR.

Operation bodies in this library are plain Python functions over handles,
written in the paper's style::

    def volume(self):
        return self.length() * self.width() * self.height()

This frontend parses the body's source with :mod:`ast` and lowers a
disciplined subset to :mod:`repro.core.analysis.ir`:

* statements: ``return``, single-target assignment, augmented
  assignment, ``if``/``else``, ``for`` over a collection, expression
  statements, ``pass``;
* expressions: names, constants, attribute chains, arithmetic/boolean/
  comparison operators, conditional expressions, calls (method calls on
  database values become IR calls; everything else is treated as a
  builtin).

Anything else raises :class:`~repro.errors.UnsupportedConstructError`;
the dependency layer then falls back to the sound everything-is-relevant
assumption for that function.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from functools import lru_cache
from typing import Callable

from repro.core.analysis import ir
from repro.errors import UnsupportedConstructError


def lower_callable(body: Callable) -> ir.FunctionIR:
    """Lower a Python callable (an operation body) to the IR."""
    code = getattr(body, "__code__", None)
    if code is None:
        raise UnsupportedConstructError(f"{body!r} has no analyzable code")
    return _lower_cached(code)


@lru_cache(maxsize=None)
def _lower_cached(code) -> ir.FunctionIR:
    try:
        source = inspect.getsource(code)
    except (OSError, TypeError) as exc:
        raise UnsupportedConstructError(
            f"source of {code.co_name} is unavailable"
        ) from exc
    tree = ast.parse(textwrap.dedent(source))
    function = next(
        (
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ),
        None,
    )
    if function is None or isinstance(function, ast.AsyncFunctionDef):
        raise UnsupportedConstructError(f"{code.co_name}: no function definition")
    arg_names = [argument.arg for argument in function.args.args]
    if not arg_names or arg_names[0] != "self":
        raise UnsupportedConstructError(
            f"{code.co_name}: first parameter must be 'self'"
        )
    if (
        function.args.vararg
        or function.args.kwarg
        or function.args.kwonlyargs
        or function.args.posonlyargs
    ):
        raise UnsupportedConstructError(
            f"{code.co_name}: only plain positional parameters are supported"
        )
    return ir.FunctionIR(
        params=tuple(arg_names[1:]),
        body=_lower_block(function.body),
        name=code.co_name,
    )


def _lower_block(stmts: list[ast.stmt]) -> tuple[ir.Stmt, ...]:
    lowered: list[ir.Stmt] = []
    for stmt in stmts:
        result = _lower_stmt(stmt)
        if result is not None:
            lowered.append(result)
    return tuple(lowered)


def _lower_stmt(stmt: ast.stmt) -> ir.Stmt | None:
    if isinstance(stmt, ast.Return):
        value = None if stmt.value is None else _lower_expr(stmt.value)
        return ir.Return(value)
    if isinstance(stmt, ast.Assign):
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            raise UnsupportedConstructError(
                "only single-name assignment targets are supported"
            )
        return ir.Assign(stmt.targets[0].id, _lower_expr(stmt.value))
    if isinstance(stmt, ast.AugAssign):
        if not isinstance(stmt.target, ast.Name):
            raise UnsupportedConstructError(
                "only name targets are supported in augmented assignment"
            )
        name = stmt.target.id
        combined = ir.Binary(
            ir.Var(name), _lower_expr(stmt.value), type(stmt.op).__name__
        )
        return ir.Assign(name, combined)
    if isinstance(stmt, ast.AnnAssign):
        if not isinstance(stmt.target, ast.Name) or stmt.value is None:
            raise UnsupportedConstructError("unsupported annotated assignment")
        return ir.Assign(stmt.target.id, _lower_expr(stmt.value))
    if isinstance(stmt, ast.If):
        return ir.If(
            _lower_expr(stmt.test),
            _lower_block(stmt.body),
            _lower_block(stmt.orelse),
        )
    if isinstance(stmt, ast.For):
        if not isinstance(stmt.target, ast.Name):
            raise UnsupportedConstructError("only simple loop variables supported")
        if stmt.orelse:
            raise UnsupportedConstructError("for/else is not supported")
        return ir.ForEach(
            stmt.target.id,
            _lower_expr(stmt.iter),
            _lower_block(stmt.body),
        )
    if isinstance(stmt, ast.Expr):
        if isinstance(stmt.value, ast.Constant):
            return None  # docstring
        return ir.ExprStmt(_lower_expr(stmt.value))
    if isinstance(stmt, ast.Pass):
        return None
    raise UnsupportedConstructError(
        f"unsupported statement {type(stmt).__name__}"
    )


def _lower_expr(expr: ast.expr) -> ir.Expr:
    if isinstance(expr, ast.Name):
        return ir.Var(expr.id)
    if isinstance(expr, ast.Constant):
        return ir.Const(expr.value)
    if isinstance(expr, ast.Attribute):
        return ir.Attr(_lower_expr(expr.value), expr.attr)
    if isinstance(expr, ast.BinOp):
        return ir.Binary(
            _lower_expr(expr.left), _lower_expr(expr.right), type(expr.op).__name__
        )
    if isinstance(expr, ast.UnaryOp):
        return ir.Unary(_lower_expr(expr.operand), type(expr.op).__name__)
    if isinstance(expr, ast.BoolOp):
        lowered = [_lower_expr(value) for value in expr.values]
        result = lowered[0]
        for operand in lowered[1:]:
            result = ir.Binary(result, operand, type(expr.op).__name__)
        return result
    if isinstance(expr, ast.Compare):
        result: ir.Expr = _lower_expr(expr.left)
        for operator, comparator in zip(expr.ops, expr.comparators):
            result = ir.Binary(
                result, _lower_expr(comparator), type(operator).__name__
            )
        return result
    if isinstance(expr, ast.IfExp):
        return ir.Conditional(
            _lower_expr(expr.test),
            _lower_expr(expr.body),
            _lower_expr(expr.orelse),
        )
    if isinstance(expr, ast.Call):
        if expr.keywords:
            raise UnsupportedConstructError("keyword arguments are not supported")
        args = tuple(_lower_expr(argument) for argument in expr.args)
        if isinstance(expr.func, ast.Attribute):
            return ir.Call(_lower_expr(expr.func.value), expr.func.attr, args)
        if isinstance(expr.func, ast.Name):
            return ir.Call(None, expr.func.id, args)
        raise UnsupportedConstructError("unsupported call target")
    if isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
        if len(expr.generators) != 1:
            raise UnsupportedConstructError(
                "only single-generator comprehensions are supported"
            )
        generator = expr.generators[0]
        if not isinstance(generator.target, ast.Name) or generator.is_async:
            raise UnsupportedConstructError(
                "comprehension targets must be simple names"
            )
        return ir.Comprehension(
            var=generator.target.id,
            iterable=_lower_expr(generator.iter),
            conditions=tuple(_lower_expr(test) for test in generator.ifs),
            element=_lower_expr(expr.elt),
        )
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        elements = [_lower_expr(element) for element in expr.elts]
        if not elements:
            return ir.Const(None)
        result = elements[0]
        for element in elements[1:]:
            result = ir.Binary(result, element, "collection")
        return result
    raise UnsupportedConstructError(f"unsupported expression {type(expr).__name__}")
