"""Path expressions ``v.A1.….Ak`` and rewrite rules ``v → p``.

A path expression is relevant to a function ``f`` if ``f`` uses the value
of ``v.A1.….Ak`` for some variable ``v`` to compute its result (Appendix).
The pseudo-attribute :data:`~repro.gom.types.ELEMENTS_ATTR` denotes
"an element of" a set/list-valued path, so membership dependence is a
first-class path step.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable


@dataclass(frozen=True, slots=True)
class PathExpression:
    """``root.attrs[0].….attrs[-1]`` — ``attrs`` may be empty (a bare var)."""

    root: str
    attrs: tuple[str, ...] = ()

    def extend(self, attribute: str) -> "PathExpression":
        return PathExpression(self.root, self.attrs + (attribute,))

    def rebase(self, base: "PathExpression") -> "PathExpression":
        """Substitute ``base`` for this path's root (rule application)."""
        return PathExpression(base.root, base.attrs + self.attrs)

    @property
    def length(self) -> int:
        return len(self.attrs)

    def __str__(self) -> str:
        return ".".join((self.root,) + self.attrs)


#: A rewrite rule ``v → p``: the variable name and the replacement path.
Rule = tuple[str, PathExpression]


def rewrite_path(
    path: PathExpression, rules: Iterable[Rule]
) -> set[PathExpression]:
    """Apply every applicable rule ``v → p`` to ``path``.

    Returns the rewritten variants, or ``{path}`` unchanged when no rule's
    left-hand side matches the root (Def. 8.1, the ``P ⊗ R`` case).
    """
    results = {
        path.rebase(replacement)
        for variable, replacement in rules
        if variable == path.root
    }
    return results if results else {path}


def rewrite_paths(
    paths: Iterable[PathExpression], rules: Iterable[Rule]
) -> set[PathExpression]:
    rule_list = list(rules)
    result: set[PathExpression] = set()
    for path in paths:
        result |= rewrite_path(path, rule_list)
    return result
