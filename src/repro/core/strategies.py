"""Rematerialization strategies (Sec. 3.1 / 4.1, related work [1]).

``IMMEDIATE``
    An invalidated function result is recomputed as soon as the
    invalidation occurs.

``LAZY``
    The result is only marked invalid (``Vi := false``); recomputation is
    deferred until the result is next needed (or an explicit
    :meth:`~repro.core.manager.GMRManager.revalidate` sweep, the paper's
    "load falls below a threshold" case).

``DEFERRED``
    Like ``LAZY``, the invalidation only marks the result invalid — but
    it also hands the entry to the
    :class:`~repro.core.scheduler.RevalidationScheduler`, the paper's
    "system load falls below a predefined threshold" case: an idle-time
    drain rematerializes the hottest invalid entries under a time/row
    budget, so forward queries rarely pay the on-demand recomputation
    that plain ``LAZY`` defers onto them.

``SNAPSHOT``
    The Adiba/Lindsay *database snapshot* discipline the paper contrasts
    itself with: updates never touch the extension at all; queries read
    the possibly stale snapshot, and an explicit
    :meth:`~repro.core.manager.GMRManager.refresh_snapshot` recomputes
    everything (periodic refresh).  Snapshot GMRs deliberately waive the
    consistency guarantee of Def. 3.2 between refreshes.
"""

from __future__ import annotations

from enum import Enum


class Strategy(Enum):
    """When invalidated GMR entries are recomputed."""

    IMMEDIATE = "immediate"
    LAZY = "lazy"
    DEFERRED = "deferred"
    SNAPSHOT = "snapshot"

    @property
    def marks_only(self) -> bool:
        """Whether an invalidation only flips the validity flag (the
        rematerialization itself is deferred)."""
        return self in (Strategy.LAZY, Strategy.DEFERRED)
