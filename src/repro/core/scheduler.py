"""Deferred revalidation (the paper's "load falls below a threshold").

Sec. 4.1 sketches lazy rematerialization: an invalidated result is only
recomputed "as soon as [it] is needed in some application or the system
load falls below a predefined threshold".  The existing
:meth:`GMRManager.revalidate` is the unbounded low-load sweep; this
module adds the *scheduled* variant the quoted sentence implies — a
priority queue of invalidated entries that a background/idle loop drains
under an explicit time or row budget.

Entries are prioritised by ``(observed forward-query frequency of the
function, staleness)``: hot functions are brought back to validity
first, because their invalid entries are the ones most likely to force
an on-demand recomputation inside a latency-sensitive forward query;
among equally hot functions the stalest (earliest-invalidated) entry
wins.  Query frequencies are observed from the manager's forward-query
stream (the per-function refinement of ``ManagerStats.forward_hits`` /
``forward_computes``).

The :data:`~repro.core.strategies.Strategy.DEFERRED` strategy feeds this
queue: an invalidation marks the entry invalid exactly like ``LAZY`` and
additionally schedules it here, so ``revalidate()`` can bring the
extension back to full validity without waiting for the next backward
query.
"""

from __future__ import annotations

import heapq
import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.gmr import GMR
    from repro.core.manager import GMRManager


class RevalidationScheduler:
    """Priority-ordered drain of invalidated GMR entries."""

    def __init__(self, manager: "GMRManager") -> None:
        self._manager = manager
        #: Heap of ``(-frequency, seq, fid, args)``; frequency is the
        #: function's forward-query count at scheduling time, ``seq`` a
        #: monotone counter so equal-frequency entries drain stalest
        #: first (heapq is a min-heap, so smaller seq pops earlier).
        self._heap: list[tuple[int, int, str, tuple]] = []
        self._queued: set[tuple[str, tuple]] = set()
        self._seq = 0
        #: Forward queries observed per function id.
        self.query_frequency: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._queued)

    def pending(self) -> int:
        return len(self._queued)

    def note_query(self, fid: str) -> None:
        """Record one forward query of ``fid`` (frequency signal)."""
        self.query_frequency[fid] = self.query_frequency.get(fid, 0) + 1

    def schedule(self, gmr: "GMR", fid: str, args: tuple) -> bool:
        """Queue one invalidated entry; returns False when already
        queued (re-invalidating a still-invalid entry is a no-op)."""
        key = (fid, args)
        if key in self._queued:
            return False
        self._seq += 1
        frequency = self.query_frequency.get(fid, 0)
        heapq.heappush(self._heap, (-frequency, self._seq, fid, args))
        self._queued.add(key)
        return True

    def clear(self) -> None:
        self._heap.clear()
        self._queued.clear()

    # -- persistence -----------------------------------------------------------

    def dump_state(self) -> dict:
        """A portable snapshot of the queue (used by checkpointing).

        Argument tuples may contain OIDs; the caller encodes/decodes the
        values (the scheduler stays oblivious to the wire format).
        """
        return {
            "heap": [
                [priority, seq, fid, list(args)]
                for priority, seq, fid, args in self._heap
            ],
            "seq": self._seq,
            "frequency": dict(self.query_frequency),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`dump_state` snapshot (replaces the queue)."""
        self._heap = [
            (priority, seq, fid, tuple(args))
            for priority, seq, fid, args in state.get("heap", [])
        ]
        heapq.heapify(self._heap)
        self._queued = {(fid, args) for _, _, fid, args in self._heap}
        self._seq = state.get("seq", 0)
        self.query_frequency = dict(state.get("frequency", {}))

    def revalidate(
        self,
        *,
        max_entries: int | None = None,
        time_budget: float | None = None,
    ) -> int:
        """Drain the queue, rematerializing under the given budgets.

        ``max_entries`` bounds the number of rematerializations (the row
        budget); ``time_budget`` is a wall-clock bound in seconds checked
        before each entry.  With neither, the whole queue drains — the
        full low-load sweep.  Returns the number of entries revalidated.

        Entries whose row disappeared (deleted via ``forget_object``) or
        that a forward query already recomputed are skipped for free;
        blind rows over deleted argument objects are dropped here, like
        in :meth:`GMRManager.revalidate`.
        """
        manager = self._manager
        started = time.perf_counter()
        drained = 0
        while self._heap:
            if max_entries is not None and drained >= max_entries:
                break
            if (
                time_budget is not None
                and time.perf_counter() - started >= time_budget
            ):
                break
            _, _, fid, args = heapq.heappop(self._heap)
            self._queued.discard((fid, args))
            gmr = manager.gmr_of(fid)
            if gmr is None:
                continue  # the GMR is gone; nothing to revalidate
            row = gmr.lookup(args)
            if row is None or row.valid[gmr.column_of(fid)]:
                continue  # row removed or already revalidated on demand
            if not manager._args_alive(args):
                gmr.remove_row(args)
                manager.stats.blind_rows_removed += 1
                continue
            manager._rematerialize(gmr, fid, args)
            manager.stats.scheduler_revalidations += 1
            drained += 1
        return drained
