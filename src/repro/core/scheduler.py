"""Deferred revalidation (the paper's "load falls below a threshold").

Sec. 4.1 sketches lazy rematerialization: an invalidated result is only
recomputed "as soon as [it] is needed in some application or the system
load falls below a predefined threshold".  The existing
:meth:`GMRManager.revalidate` is the unbounded low-load sweep; this
module adds the *scheduled* variant the quoted sentence implies — a
priority queue of invalidated entries that a background/idle loop drains
under an explicit time or row budget.

Entries are prioritised by ``(observed forward-query frequency of the
function, staleness)``: hot functions are brought back to validity
first, because their invalid entries are the ones most likely to force
an on-demand recomputation inside a latency-sensitive forward query;
among equally hot functions the stalest (earliest-invalidated) entry
wins.  Query frequencies are observed from the manager's forward-query
stream (the per-function refinement of ``ManagerStats.forward_hits`` /
``forward_computes``).

The :data:`~repro.core.strategies.Strategy.DEFERRED` strategy feeds this
queue: an invalidation marks the entry invalid exactly like ``LAZY`` and
additionally schedules it here, so ``revalidate()`` can bring the
extension back to full validity without waiting for the next backward
query.

The scheduler is also the *retry engine* of the fault-tolerance
pipeline: entries whose rematerialization failed under the execution
guard re-enter through :meth:`schedule_retry` with a bounded attempt
count and an exponentially backed-off, jittered eligibility deadline
(:func:`~repro.core.guard.jittered_delay`).  Delayed entries sit in a
second, deadline-ordered heap and promote into the main priority queue
once ripe; entries of a quarantined function are parked until the
circuit breaker's probe window opens.

Thread safety: all queue state (``_heap``, ``_delayed``, ``_queued``,
``_attempts``, ``_seq``) is guarded by one internal reentrant lock, so
``schedule``/``schedule_retry`` racing a concurrent drain can neither
pop an entry on one thread while ``_queued`` is mutated on another nor
double-queue a key.  :meth:`_drain` claims each entry *atomically* (pop
plus ``_queued`` discard in one critical section) and then processes it
outside the lock — the lock is never held across a rematerialization or
any other user code.  The :attr:`on_ready` hook (a worker pool's wakeup)
is likewise always fired outside the lock, which keeps the locking
hierarchy acyclic (see ``docs/CONCURRENCY.md``).  ``query_frequency``
updates are deliberately unlocked: the counter is a prioritisation
heuristic and a lost increment under a race is harmless.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import TYPE_CHECKING, Callable

from repro.concurrency.sharding import ShardCommitConflict
from repro.errors import FunctionExecutionError, FunctionQuarantinedError
from repro.core.guard import jittered_delay
from repro.util.rng import DeterministicRng

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.gmr import GMR
    from repro.core.manager import GMRManager


class RevalidationScheduler:
    """Priority-ordered drain of invalidated GMR entries."""

    def __init__(self, manager: "GMRManager") -> None:
        self._manager = manager
        #: Heap of ``(-frequency, seq, fid, args)``; frequency is the
        #: function's forward-query count at scheduling time, ``seq`` a
        #: monotone counter so equal-frequency entries drain stalest
        #: first (heapq is a min-heap, so smaller seq pops earlier).
        self._heap: list[tuple[int, int, str, tuple]] = []
        #: Heap of ``(eligible_at, seq, fid, args)`` — retry entries
        #: waiting out their backoff delay (manager clock readings).
        self._delayed: list[tuple[float, int, str, tuple]] = []
        self._queued: set[tuple[str, tuple]] = set()
        self._seq = 0
        #: Failed-rematerialization attempt counts per ``(fid, args)``;
        #: cleared on success or when the entry becomes moot.
        self._attempts: dict[tuple[str, tuple], int] = {}
        #: Delayed entries that are *transient* — parked for a few
        #: milliseconds by the sharded write-epoch protocol, not backing
        #: off a failure.  A quiescer must wait these out (they ripen
        #: almost immediately), unlike retry backoff or quarantine
        #: parking, which quiescence deliberately ignores.
        self._transient: set[tuple[str, tuple]] = set()
        self._rng: DeterministicRng | None = None
        #: Forward queries observed per function id.
        self.query_frequency: dict[str, int] = {}
        #: Guards every structural queue mutation; reentrant so the
        #: retry path (``schedule_retry`` -> ``_push_delayed``) nests.
        self._lock = threading.RLock()
        #: Fired (outside the lock) whenever new work becomes runnable;
        #: the revalidation worker pool wires its wakeup here.
        self.on_ready: Callable[[], None] | None = None

    def __len__(self) -> int:
        return len(self._queued)

    def pending(self) -> int:
        return len(self._queued)

    def pending_for(self, fid: str) -> int:
        """Queued entries (ready or backing off) of one function id."""
        with self._lock:
            return sum(
                1 for queued_fid, _ in self._queued if queued_fid == fid
            )

    def ready_pending(self) -> int:
        """Entries runnable *now*: ripe delayed retries are promoted and
        the main heap's length returned.  The worker pool polls this."""
        with self._lock:
            self._promote_due()
            return len(self._heap)

    def unsettled_pending(self) -> int:
        """Entries a quiescer must wait out: everything runnable now
        plus transient (write-epoch conflict) defers still ripening.
        Excludes genuine retry backoff and breaker quarantine parking —
        those are the *failure* delays quiescence deliberately skips."""
        with self._lock:
            self._promote_due()
            return len(self._heap) + len(self._transient)

    def _observe_depth(self) -> None:
        manager = self._manager
        if manager._obs_on:
            depth = len(self._queued)
            manager._m_queue_depth.set(depth)
            manager._m_queue_depth_hist.observe(depth)

    def _notify_ready(self) -> None:
        hook = self.on_ready
        if hook is not None:
            hook()

    @property
    def _retry_rng(self) -> DeterministicRng:
        if self._rng is None:
            self._rng = DeterministicRng(self._manager.fault_policy.retry_seed)
        return self._rng

    def note_query(self, fid: str) -> None:
        """Record one forward query of ``fid`` (frequency signal)."""
        self.query_frequency[fid] = self.query_frequency.get(fid, 0) + 1

    def schedule(self, gmr: "GMR", fid: str, args: tuple) -> bool:
        """Queue one invalidated entry; returns False when already
        queued (re-invalidating a still-invalid entry is a no-op)."""
        key = (fid, args)
        with self._lock:
            if key in self._queued:
                return False
            self._seq += 1
            frequency = self.query_frequency.get(fid, 0)
            heapq.heappush(self._heap, (-frequency, self._seq, fid, args))
            self._queued.add(key)
        self._observe_depth()
        self._notify_ready()
        return True

    def defer(
        self, gmr: "GMR", fid: str, args: tuple, delay: float = 0.005
    ) -> bool:
        """Requeue an entry a short moment from now (no attempt charged).

        Used by the sharded engine when a background rematerialization
        loses the write-epoch race against a concurrent update: the
        entry goes onto the *delayed* heap — delayed entries pushed
        during a drain are not promoted within the same sweep, so a
        hot updater cannot livelock a drain — and becomes ripe again
        after ``delay`` seconds.  Already-queued entries are left alone.
        """
        key = (fid, args)
        with self._lock:
            if key in self._queued:
                return False
            self._push_delayed(fid, args, delay, transient=True)
        self._notify_ready()
        return True

    # -- retry/backoff -----------------------------------------------------------

    def attempts(self, fid: str, args: tuple) -> int:
        """Failed-attempt count currently charged to ``(fid, args)``."""
        return self._attempts.get((fid, args), 0)

    def delayed_entries(self) -> list[tuple[float, str, tuple]]:
        """``(eligible_at, fid, args)`` of entries still backing off."""
        with self._lock:
            return sorted(
                (eligible_at, fid, args)
                for eligible_at, _, fid, args in self._delayed
            )

    def schedule_retry(self, gmr: "GMR", fid: str, args: tuple) -> bool:
        """Queue a *failed* entry for a backed-off retry.

        Charges one attempt; once ``FaultPolicy.max_attempts`` failed
        attempts accumulate the entry is abandoned (it stays in the
        ERROR state until a query or sweep touches it again) and False
        is returned.  Already-queued entries are left alone — the
        in-flight schedule subsumes the new request.
        """
        key = (fid, args)
        manager = self._manager
        policy = manager.fault_policy
        with self._lock:
            if key in self._queued:
                return False
            attempt = self._attempts.get(key, 0) + 1
            if attempt > policy.max_attempts:
                self._attempts.pop(key, None)
                manager.stats.retries_exhausted += 1
                exhausted = True
            else:
                self._attempts[key] = attempt
                delay = jittered_delay(policy, attempt, self._retry_rng)
                self._push_delayed(fid, args, delay)
                exhausted = False
        if exhausted:
            if manager.tracer.enabled:
                manager.tracer.event(
                    "retry.exhausted", fid=fid, attempts=policy.max_attempts
                )
            return False
        if manager.tracer.enabled:
            manager.tracer.event(
                "retry.scheduled", fid=fid, attempt=attempt, delay=delay
            )
        self._notify_ready()
        return True

    def _push_delayed(
        self, fid: str, args: tuple, delay: float, *, transient: bool = False
    ) -> None:
        with self._lock:
            self._seq += 1
            eligible_at = self._manager._now() + delay
            heapq.heappush(self._delayed, (eligible_at, self._seq, fid, args))
            self._queued.add((fid, args))
            if transient:
                self._transient.add((fid, args))
        self._observe_depth()

    def _promote_due(self) -> None:
        """Move ripe delayed entries into the main priority queue."""
        with self._lock:
            now = self._manager._now()
            while self._delayed and self._delayed[0][0] <= now:
                _, _, fid, args = heapq.heappop(self._delayed)
                self._transient.discard((fid, args))
                self._seq += 1
                frequency = self.query_frequency.get(fid, 0)
                heapq.heappush(
                    self._heap, (-frequency, self._seq, fid, args)
                )

    def _note_retry_success(self, key: tuple[str, tuple]) -> None:
        with self._lock:
            had_attempts = self._attempts.pop(key, 0) > 0
        if had_attempts:
            self._manager.stats.retry_successes += 1

    def _drop_attempts(self, key: tuple[str, tuple]) -> None:
        with self._lock:
            self._attempts.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()
            self._delayed.clear()
            self._queued.clear()
            self._attempts.clear()
            self._transient.clear()

    # -- persistence -----------------------------------------------------------

    def dump_state(self) -> dict:
        """A portable snapshot of the queue (used by checkpointing).

        Argument tuples may contain OIDs; the caller encodes/decodes the
        values (the scheduler stays oblivious to the wire format).
        Backoff deadlines are dumped as *remaining* delays, since
        monotonic clock readings do not survive a process.
        """
        with self._lock:
            now = self._manager._now()
            # The heap entries are immutable tuples — hand them out as-is
            # (one shallow list copy for the whole heap).  Rebuilding
            # ``list(args)`` per entry made every dump allocate O(entries)
            # throwaway lists on the checkpoint path; the WAL smoke
            # benchmark pins the allocation profile.
            return {
                "heap": list(self._heap),
                "delayed": [
                    (max(0.0, eligible_at - now), seq, fid, args)
                    for eligible_at, seq, fid, args in self._delayed
                ],
                "attempts": [
                    (fid, args, count)
                    for (fid, args), count in self._attempts.items()
                ],
                "seq": self._seq,
                "frequency": dict(self.query_frequency),
            }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`dump_state` snapshot (replaces the queue)."""
        with self._lock:
            now = self._manager._now()
            self._heap = [
                (priority, seq, fid, tuple(args))
                for priority, seq, fid, args in state.get("heap", [])
            ]
            heapq.heapify(self._heap)
            self._delayed = [
                (now + float(remaining), seq, fid, tuple(args))
                for remaining, seq, fid, args in state.get("delayed", [])
            ]
            heapq.heapify(self._delayed)
            self._queued = {(fid, args) for _, _, fid, args in self._heap}
            self._queued.update(
                (fid, args) for _, _, fid, args in self._delayed
            )
            self._attempts = {
                (fid, tuple(args)): int(count)
                for fid, args, count in state.get("attempts", [])
            }
            # Transient (epoch-conflict) defers live for milliseconds;
            # any that were dumped restore as ordinary delayed entries.
            self._transient = set()
            self._seq = state.get("seq", 0)
            self.query_frequency = dict(state.get("frequency", {}))
        self._notify_ready()

    def revalidate(
        self,
        *,
        max_entries: int | None = None,
        time_budget: float | None = None,
    ) -> int:
        """Drain the queue, rematerializing under the given budgets.

        ``max_entries`` bounds the number of rematerializations (the row
        budget); ``time_budget`` is a wall-clock bound in seconds checked
        before each entry.  With neither, the whole *ripe* queue drains —
        the full low-load sweep.  Returns the number of entries
        revalidated.

        Entries whose row disappeared (deleted via ``forget_object``) or
        that a forward query already recomputed are skipped for free;
        blind rows over deleted argument objects are dropped here, like
        in :meth:`GMRManager.revalidate`.  Entries that fail again under
        the execution guard re-enter through :meth:`schedule_retry`
        (bounded); entries of a quarantined function are parked until
        the breaker's probe window.  Delayed entries pushed during this
        drain are not promoted within the same call, so one sweep
        terminates even under persistent failures.
        """
        manager = self._manager
        if manager._db.health.read_only:
            # Storage degraded: a rematerialization that cannot log its
            # revalidation trail must not commit.  The queue keeps its
            # entries; the sweep resumes once a probe re-arms HEALTHY.
            return 0
        tracer = manager.tracer
        span = (
            tracer.begin("scheduler.drain", pending=len(self._queued))
            if tracer.enabled
            else None
        )
        drained = 0
        try:
            drained = self._drain(max_entries, time_budget)
        finally:
            self._observe_depth()
            if span is not None:
                tracer.end(span, drained=drained)
        return drained

    def _claim_next(self) -> tuple[str, tuple] | None:
        """Atomically pop the hottest ready entry and unmark it queued.

        The pop and the ``_queued`` discard happen in one critical
        section, so a concurrent ``schedule`` of the same ``(fid,
        args)`` either sees the entry still queued (and no-ops) or sees
        it fully claimed (and re-queues it for a later sweep) — never a
        half-claimed state that double-queues or loses the key.
        """
        with self._lock:
            if not self._heap:
                return None
            _, _, fid, args = heapq.heappop(self._heap)
            self._queued.discard((fid, args))
            return fid, args

    def _drain(
        self, max_entries: int | None, time_budget: float | None
    ) -> int:
        manager = self._manager
        # Mark this thread as draining for the duration of the sweep —
        # the manager's rematerialization path only runs its write-epoch
        # conflict protocol for drain-originated work on a sharded base
        # (foreground remats hold the global update lock and need none).
        flag = manager._drain_flag
        flag.active = getattr(flag, "active", 0) + 1
        try:
            return self._drain_inner(manager, max_entries, time_budget)
        finally:
            flag.active -= 1

    def _drain_inner(
        self,
        manager: "GMRManager",
        max_entries: int | None,
        time_budget: float | None,
    ) -> int:
        self._promote_due()
        started = time.perf_counter()
        drained = 0
        while True:
            if max_entries is not None and drained >= max_entries:
                break
            if (
                time_budget is not None
                and time.perf_counter() - started >= time_budget
            ):
                break
            claimed = self._claim_next()
            if claimed is None:
                break
            fid, args = claimed
            key = (fid, args)
            gmr = manager.gmr_of(fid)
            if gmr is None:
                self._drop_attempts(key)
                continue  # the GMR is gone; nothing to revalidate
            if fid == gmr.predicate_fid:
                if manager._shards > 1 and manager._db._write_epoch & 1:
                    # An update is mid-flight; a predicate re-evaluation
                    # now could read torn state.  Defer instead.
                    self._push_delayed(fid, args, 0.005, transient=True)
                    continue
                policy = manager.fault_policy
                if (
                    policy.enabled
                    and manager.breaker.quarantined(fid)
                    and not manager.breaker.probe_eligible(fid)
                ):
                    self._push_delayed(
                        fid,
                        args,
                        max(
                            manager.breaker.seconds_until_probe(fid),
                            policy.base_delay,
                        ),
                    )
                    continue
                if manager._predicate_update_safe(gmr, args):
                    self._note_retry_success(key)
                    manager.stats.scheduler_revalidations += 1
                    drained += 1
                continue
            _value, valid, exists = gmr.probe(args, fid)
            if not exists or valid:
                self._drop_attempts(key)
                continue  # row removed or already revalidated on demand
            if not manager._args_alive(args):
                gmr.remove_row(args)
                manager.stats.blind_rows_removed += 1
                self._drop_attempts(key)
                continue
            policy = manager.fault_policy
            if (
                policy.enabled
                and manager.breaker.quarantined(fid)
                and not manager.breaker.probe_eligible(fid)
            ):
                # Park until the probe window; no attempt is charged —
                # quarantine is the breaker's delay, not the entry's.
                self._push_delayed(
                    fid,
                    args,
                    max(manager.breaker.seconds_until_probe(fid), policy.base_delay),
                )
                continue
            try:
                manager._rematerialize(gmr, fid, args)
            except ShardCommitConflict:
                continue  # entry already re-deferred by the manager
            except FunctionQuarantinedError:
                self._push_delayed(
                    fid,
                    args,
                    max(manager.breaker.seconds_until_probe(fid), policy.base_delay),
                )
                continue
            except FunctionExecutionError:
                continue  # _record_failure already scheduled the retry
            self._note_retry_success(key)
            manager.stats.scheduler_revalidations += 1
            drained += 1
        return drained
