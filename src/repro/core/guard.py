"""Execution guard for user-supplied function bodies.

The paper's whole contract is that materialization is *transparent*: a
forward query may always be answered by directly evaluating the
side-effect-free function (Sec. 3.2).  That makes degraded-mode
operation semantically safe by construction — so nothing a user
function does (raise, stall) may be allowed to unwind the manager's
maintenance loops and leave the GMR inconsistent (Def. 3.2).

:class:`ExecutionGuard` is the conversion layer: it times every body
invocation and turns exceptions and wall-clock budget overruns into
:class:`~repro.errors.FunctionExecutionError` values the manager
handles deterministically (ERROR validity state, bounded retry,
circuit breaker) instead of letting them propagate mid-loop.

:class:`FaultPolicy` collects the knobs of the whole fault-tolerance
pipeline — guard budget, retry/backoff schedule, breaker thresholds —
in one place; it is plain configuration and is intentionally *not*
persisted (like restriction predicates, it is code-level state the
application re-supplies).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import FunctionExecutionError, FunctionTimeoutError
from repro.util.rng import DeterministicRng


@dataclass
class FaultPolicy:
    """Configuration of the fault-tolerant rematerialization pipeline."""

    #: Master switch.  ``False`` restores the unguarded seed behaviour
    #: (user-code exceptions unwind the caller) — used by the guard
    #:-overhead ablation benchmark and as an escape hatch.
    enabled: bool = True
    #: Wall-clock budget (seconds) for one function-body invocation;
    #: ``None`` disables stall detection.  Detection is post-hoc — the
    #: body is not preempted, but an overrunning call is treated exactly
    #: like a raising one (result discarded, entry demoted to ERROR).
    call_budget: float | None = None
    #: Per-entry retry cap: after this many failed rematerialization
    #: attempts the entry stays in the ERROR state until an explicit
    #: query or sweep touches it again.
    max_attempts: int = 5
    #: First retry delay (seconds); doubles per attempt.
    base_delay: float = 0.05
    #: Ceiling of the exponential backoff.
    max_delay: float = 5.0
    #: Jitter fraction: the delay is scaled by a factor drawn uniformly
    #: from ``[1 - jitter, 1 + jitter]`` so synchronized failures do not
    #: retry in lockstep.
    jitter: float = 0.1
    #: Seed of the jitter RNG (:class:`~repro.util.rng.DeterministicRng`)
    #: — retries are reproducible under a fixed seed.
    retry_seed: int = 0
    #: Circuit breaker: consecutive failures of one function before it
    #: is quarantined.
    failure_threshold: int = 3
    #: Seconds a quarantined function stays closed to execution before a
    #: probe may half-open the breaker.
    cooldown: float = 30.0


def backoff_delay(policy: FaultPolicy, attempt: int) -> float:
    """The un-jittered delay before retry number ``attempt`` (1-based)."""
    if attempt < 1:
        raise ValueError("attempt numbers are 1-based")
    return min(policy.max_delay, policy.base_delay * (2.0 ** (attempt - 1)))


def jittered_delay(
    policy: FaultPolicy, attempt: int, rng: DeterministicRng
) -> float:
    """The actual scheduling delay: exponential backoff with jitter.

    Guaranteed to lie within ``backoff_delay(...) * [1 - j, 1 + j]``.
    """
    base = backoff_delay(policy, attempt)
    if policy.jitter <= 0:
        return base
    return base * rng.uniform(1.0 - policy.jitter, 1.0 + policy.jitter)


class ExecutionGuard:
    """Times one body invocation and converts failures into values.

    The guard deliberately knows nothing about GMRs, breakers or
    schedulers — it is the narrow waist that turns arbitrary user-code
    behaviour into a ``(value, failure)`` pair.  ``BaseException``
    (``KeyboardInterrupt``, the test harness's ``SimulatedCrash``)
    passes through untouched: a dying process is not a function fault.

    Thread-safety: the guard keeps no per-call state — ``timed`` works
    entirely with locals — so one instance may be shared by the worker
    pool and foreground threads without locking.  The ``observer`` hook
    must itself be thread-safe (the manager wires a locked histogram).
    """

    def __init__(
        self,
        policy: FaultPolicy,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy
        self.clock = clock
        #: Optional timing hook ``observer(fid, elapsed, failed)`` —
        #: the manager wires this to the remat-latency histogram.  When
        #: unset and no budget is configured, the post-call clock read
        #: is skipped entirely.
        self.observer: Callable[[str, float, bool], None] | None = None

    def timed(
        self, fid: str, args: tuple, thunk: Callable[[], Any]
    ) -> tuple[Any, FunctionExecutionError | None]:
        """Run ``thunk``; return ``(value, None)`` or ``(None, failure)``."""
        observer = self.observer
        started = self.clock()
        try:
            value = thunk()
        except Exception as exc:
            if observer is not None:
                observer(fid, self.clock() - started, True)
            return None, FunctionExecutionError(fid, args, cause=exc)
        budget = self.policy.call_budget
        if budget is not None or observer is not None:
            elapsed = self.clock() - started
            if budget is not None and elapsed > budget:
                if observer is not None:
                    observer(fid, elapsed, True)
                return None, FunctionTimeoutError(
                    fid, args, elapsed=elapsed, budget=budget
                )
            if observer is not None:
                observer(fid, elapsed, False)
        return value, None
