"""Generalized Materialization Relations (Defs. 3.1–3.4).

A GMR ``⟨⟨f1, ..., fm⟩⟩`` for functions sharing argument types
``t1, ..., tn`` is a relation

    ``[O1: t1, ..., On: tn, f1: tn+1, V1: bool, ..., fm: tn+m, Vm: bool]``

storing argument combinations, results and validity flags.  This class is
the *logical* GMR: schema, restriction, strategy and the extension-level
notions of the paper —

* **consistent** (Def. 3.2): every entry flagged valid holds the true
  function result (enforced by the manager's maintenance algorithms;
  checkable via :meth:`check_consistency`);
* **fj-valid** (Def. 3.3): every stored result of ``fj`` is valid;
* **complete** (Def. 3.4): one entry per argument combination from the
  extension cross-product (restricted GMRs: per combination satisfying
  the restriction predicate, Def. 6.1).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from collections.abc import Iterator
from typing import TYPE_CHECKING, Any

from repro.core.function_registry import FunctionInfo
from repro.core.restricted import RestrictionSpec
from repro.core.strategies import Strategy
from repro.errors import GMRDefinitionError
from repro.storage.gmr_store import ColumnarGMRStore, GMRRow, GMRStore
from repro.util.tables import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.gom.database import ObjectBase


class GMR:
    """One generalized materialization relation."""

    def __init__(
        self,
        functions: list[FunctionInfo],
        *,
        page_store=None,
        buffer=None,
        complete: bool = True,
        strategy: Strategy = Strategy.IMMEDIATE,
        restriction: RestrictionSpec | None = None,
        storage: str = "auto",
        name: str | None = None,
        capacity: int | None = None,
        row_placement: str = "separate",
        layout: str = "rows",
    ) -> None:
        if not functions:
            raise GMRDefinitionError("a GMR needs at least one function")
        arg_types = functions[0].arg_types
        for info in functions[1:]:
            if info.arg_types != arg_types:
                raise GMRDefinitionError(
                    f"functions in one GMR must share argument types: "
                    f"{functions[0].fid} has {arg_types}, "
                    f"{info.fid} has {info.arg_types}"
                )
        if capacity is not None:
            if complete:
                raise GMRDefinitionError(
                    "a complete GMR must hold every argument combination; "
                    "capacity limits apply to incrementally set up GMRs only"
                )
            if capacity < 1:
                raise GMRDefinitionError("GMR capacity must be positive")
        self.functions = list(functions)
        self.arg_types = arg_types
        self.complete = complete
        self.strategy = strategy
        self.restriction = restriction
        #: Entry limit for cache-style GMRs (Sec. 3.2: "specialized
        #: replacement strategies ... can be applied"); LRU replacement.
        self.capacity = capacity
        self._recency: OrderedDict[tuple, None] = OrderedDict()
        self.evictions = 0
        self.name = name or "<<" + ", ".join(
            info.short_name for info in functions
        ) + ">>"
        self._column_of = {info.fid: index for index, info in enumerate(functions)}
        if row_placement == "separate":
            row_segment = None
        elif row_placement == "with_arguments":
            # Jhingran's CT alternative: results live on the pages of the
            # (first) argument type's objects.  The paper chose separate
            # storage; this option exists for the storage ablation.
            row_segment = arg_types[0]
        else:
            raise GMRDefinitionError(
                f"unknown row placement {row_placement!r} "
                f"(use 'separate' or 'with_arguments')"
            )
        self.row_placement = row_placement
        if layout == "rows":
            store_cls = GMRStore
        elif layout == "columnar":
            store_cls = ColumnarGMRStore
        else:
            raise GMRDefinitionError(
                f"unknown GMR layout {layout!r} (use 'rows' or 'columnar')"
            )
        self.layout = layout
        self.store = store_cls(
            self.name,
            arg_count=len(arg_types),
            fct_count=len(functions),
            page_store=page_store,
            buffer=buffer,
            storage=storage,
            row_segment=row_segment,
        )
        #: Pseudo-function id under which the restriction predicate's
        #: dependencies are tracked in the RRR (Sec. 6.1).
        self.predicate_fid = f"__pred__:{self.name}"
        #: Back-reference set by :meth:`GMRManager.materialize` — lets
        #: ``gmr.explain()`` reach the manager's observability state.
        self._manager = None

    def explain(self):
        """This GMR's EXPLAIN section (see :meth:`GMRManager.explain`)."""
        if self._manager is None:
            raise GMRDefinitionError(
                f"{self.name} is not attached to a GMR manager"
            )
        return self._manager.explain(self)

    # -- structure ----------------------------------------------------------------

    @property
    def fids(self) -> list[str]:
        return [info.fid for info in self.functions]

    @property
    def arity(self) -> int:
        """Def. 3.1: ``n + 2·m``."""
        return len(self.arg_types) + 2 * len(self.functions)

    def column_of(self, fid: str) -> int:
        try:
            return self._column_of[fid]
        except KeyError:
            raise GMRDefinitionError(f"{self.name} does not contain {fid}") from None

    def function(self, fid: str) -> FunctionInfo:
        return self.functions[self.column_of(fid)]

    @property
    def is_restricted(self) -> bool:
        return self.restriction is not None and (
            self.restriction.predicate is not None or bool(self.restriction.atomic)
        )

    # -- extension access ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.store)

    def lookup(self, args: tuple) -> GMRRow | None:
        row = self.store.get(args)
        if row is not None and self.capacity is not None:
            self._touch_recency(args)
        return row

    def rows(self) -> Iterator[GMRRow]:
        return self.store.rows()

    def args(self) -> list[tuple]:
        return self.store.args()

    def ensure_row(self, args: tuple) -> GMRRow:
        is_new = self.store.get(args) is None
        row = self.store.ensure_row(args)
        if self.capacity is not None:
            self._touch_recency(args)
            if is_new:
                self._evict_over_capacity()
        return row

    def remove_row(self, args: tuple) -> bool:
        self._recency.pop(args, None)
        return self.store.remove_row(args)

    def _touch_recency(self, args: tuple) -> None:
        recency = self._recency
        if args in recency:
            recency.move_to_end(args)
        else:
            recency[args] = None

    def _evict_over_capacity(self) -> None:
        """LRU replacement for cache-style GMRs.

        Evicted rows leave their RRR entries behind as leftovers — they
        are cleaned lazily exactly like the blind references of Sec. 4.2.
        """
        assert self.capacity is not None
        while len(self.store) > self.capacity and self._recency:
            victim, _ = self._recency.popitem(last=False)
            self.store.remove_row(victim)
            self.evictions += 1

    def set_result(self, args: tuple, fid: str, value: Any) -> GMRRow:
        if self.capacity is not None:
            self.ensure_row(args)  # keeps LRU recency and capacity honest
        return self.store.set_result(args, self.column_of(fid), value)

    def mark_invalid(self, args: tuple, fid: str) -> bool:
        return self.store.mark_invalid(args, self.column_of(fid))

    def mark_error(self, args: tuple, fid: str) -> bool:
        """Demote one entry to the ERROR validity state (guard failure)."""
        return self.store.mark_error(args, self.column_of(fid))

    def support_state(self, args: tuple, fid: str) -> dict | None:
        """The delta engine's support state for one entry (or ``None``)."""
        return self.store.support_state(args, self.column_of(fid))

    def set_support_state(self, args: tuple, fid: str, state: dict | None) -> None:
        self.store.set_support_state(args, self.column_of(fid), state)

    def probe(self, args: tuple, fid: str) -> tuple[Any, bool, bool]:
        """One cell of one entry: ``(value, valid, exists)``.

        The forward-query fast path — equivalent to :meth:`lookup` plus
        column reads, but the columnar layout answers it without
        constructing a row view.  Keeps LRU recency exactly like
        :meth:`lookup`.
        """
        cell = self.store.probe(args, self.column_of(fid))
        if cell[2] and self.capacity is not None:
            self._touch_recency(args)
        return cell

    def entry_cell(self, args: tuple, fid: str) -> tuple[Any, bool, bool, bool]:
        """``(value, valid, error, exists)`` — :meth:`probe` plus the
        ERROR flag, for the delta engine's cell reads."""
        cell = self.store.entry_cell(args, self.column_of(fid))
        if cell[3] and self.capacity is not None:
            self._touch_recency(args)
        return cell

    def lookup_many(
        self, args_list: list[tuple], fid: str
    ) -> list[tuple[Any, bool, bool]]:
        """Vectorized :meth:`probe` over a batch of argument tuples."""
        cells = self.store.lookup_many(args_list, self.column_of(fid))
        if self.capacity is not None:
            for args, cell in zip(args_list, cells):
                if cell[2]:
                    self._touch_recency(args)
        return cells

    def mark_invalid_many(self, args_iter, fid: str) -> list[tuple]:
        """Batch :meth:`mark_invalid`; returns the args that transitioned."""
        return self.store.mark_invalid_many(self.column_of(fid), args_iter)

    def result(self, args: tuple, fid: str) -> tuple[Any, bool]:
        """``(value, valid)`` for one entry; raises if the row is absent."""
        value, valid, _error, exists = self.store.entry_cell(
            args, self.column_of(fid)
        )
        if not exists:
            raise GMRDefinitionError(f"{self.name} has no entry for {args!r}")
        return value, valid

    def entry_state(self, args: tuple, fid: str) -> str:
        """``"valid"`` / ``"invalid"`` / ``"error"`` / ``"missing"``."""
        _value, valid, error, exists = self.store.entry_cell(
            args, self.column_of(fid)
        )
        if not exists:
            return "missing"
        if valid:
            return "valid"
        return "error" if error else "invalid"

    def invalid_args(self, fid: str) -> set[tuple]:
        return self.store.invalid_args(self.column_of(fid))

    def error_args(self, fid: str) -> set[tuple]:
        """Argument combinations currently in the ERROR state for ``fid``."""
        return self.store.error_args(self.column_of(fid))

    def has_errors(self, fid: str) -> bool:
        return self.store.has_errors(self.column_of(fid))

    def backward(
        self,
        fid: str,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, tuple]]:
        return self.store.backward(
            self.column_of(fid),
            low,
            high,
            include_low=include_low,
            include_high=include_high,
        )

    # -- QBE-style tabular retrieval (Sec. 3.2) -----------------------------------------

    def retrieve(self, spec: dict[str, Any]) -> list[dict[str, Any]]:
        """The paper's tabular retrieval operations.

        ``spec`` maps column names — ``"O1".."On"`` for arguments, the
        functions' short names for results — to one of:

        * ``"?"`` — return this column,
        * a ``(low, high)`` tuple — inclusive range filter (either end
          may be ``None``),
        * any other value — exact-match filter,
        * column absent — don't care (the paper's ``–``).

        A forward query is ``{"O1": id, "f1": "?"}``; a backward range
        query is ``{"O1": "?", "f1": (lb, ub)}``.  Only *valid* results
        participate; invalid entries are filtered out (callers wanting
        completeness run :meth:`GMRManager.revalidate` first, as the
        backward-query path does).
        """
        arg_names = [f"O{i + 1}" for i in range(len(self.arg_types))]
        fct_names = [info.short_name for info in self.functions]
        known = set(arg_names) | set(fct_names)
        unknown = set(spec) - known
        if unknown:
            raise GMRDefinitionError(
                f"{self.name} has no column(s) {sorted(unknown)}; "
                f"columns are {arg_names + fct_names}"
            )

        wanted = [name for name in arg_names + fct_names if spec.get(name) == "?"]
        results: list[dict[str, Any]] = []
        for row in self.store.rows():
            if not self._qbe_matches(row, spec, arg_names, fct_names):
                continue
            record: dict[str, Any] = {}
            for name in wanted:
                if name in arg_names:
                    record[name] = row.args[arg_names.index(name)]
                else:
                    record[name] = row.results[fct_names.index(name)]
            results.append(record)
        return results

    def _qbe_matches(self, row, spec, arg_names, fct_names) -> bool:
        for index, name in enumerate(arg_names):
            condition = spec.get(name)
            if condition is None or condition == "?":
                continue
            if not _qbe_condition(row.args[index], condition):
                return False
        for index, name in enumerate(fct_names):
            condition = spec.get(name)
            if condition is None:
                continue
            if not row.valid[index]:
                return False  # invalid results never participate
            if condition == "?":
                continue
            if not _qbe_condition(row.results[index], condition):
                return False
        return True

    # -- extension-level properties (Defs. 3.2-3.4) ------------------------------------

    def is_valid(self, fid: str) -> bool:
        """Def. 3.3: the extension is ``fj``-valid."""
        return not self.store.has_invalid(self.column_of(fid))

    def is_fully_valid(self) -> bool:
        return all(self.is_valid(fid) for fid in self.fids)

    def check_consistency(self, db: "ObjectBase") -> list[str]:
        """Def. 3.2: recompute every valid entry; return violations.

        This is a test/debug helper — it evaluates the real functions, so
        it is as expensive as a full rematerialization.
        """
        violations: list[str] = []
        for row in self.store.rows():
            for column, info in enumerate(self.functions):
                if not row.valid[column]:
                    continue
                actual = db.call_function(info, row.args)
                stored = row.results[column]
                if not _values_equal(stored, actual):
                    violations.append(
                        f"{self.name}{row.args!r}.{info.short_name}: "
                        f"stored {stored!r} != actual {actual!r}"
                    )
        return violations

    def expected_extension(self, db: "ObjectBase") -> set[tuple]:
        """The argument combinations a complete extension must hold
        (Def. 3.4, restricted per Def. 6.1)."""
        from itertools import product

        from repro.gom.types import is_atomic_type

        domains: list[list[Any]] = []
        for position, type_name in enumerate(self.arg_types):
            if is_atomic_type(type_name):
                assert self.restriction is not None
                domains.append(self.restriction.atomic_values(position))
            else:
                domains.append(list(db.objects.extension(type_name)))
        combos = set(product(*domains))
        if self.restriction is not None:
            combos = {
                args for args in combos if self.restriction.allows(db, args)
            }
        return combos

    def is_complete(self, db: "ObjectBase") -> bool:
        """Def. 3.4 / Def. 6.1 completeness of the current extension."""
        return set(self.store.args()) == self.expected_extension(db)

    # -- display ----------------------------------------------------------------------

    def extension_table(self) -> str:
        """Render the extension like the paper's GMR figures."""
        headers = [f"O{i + 1}: {t}" for i, t in enumerate(self.arg_types)]
        for info in self.functions:
            headers.append(f"{info.short_name}: {info.result_type}")
            headers.append("V")
        rows = []
        for row in sorted(self.store.rows(), key=lambda r: repr(r.args)):
            cells: list[object] = list(row.args)
            for column in range(len(self.functions)):
                cells.append(row.results[column])
                if row.error[column]:
                    cells.append("E")
                else:
                    cells.append(row.valid[column])
            rows.append(cells)
        return format_table(headers, rows, title=self.name)


def _qbe_condition(value: Any, condition: Any) -> bool:
    if isinstance(condition, tuple) and len(condition) == 2:
        low, high = condition
        if low is not None and value < low:
            return False
        if high is not None and value > high:
            return False
        return True
    return value == condition


def _values_equal(first: Any, second: Any) -> bool:
    if isinstance(first, float) and isinstance(second, float):
        return math.isclose(first, second, rel_tol=1e-9, abs_tol=1e-12)
    return first == second
