"""Saving and loading an object base (objects + materializations).

An object base persists as a JSON document holding the object graph
(OIDs preserved), the attribute indexes, every GMR's definition and
extension, and the Reverse Reference Relation — everything except code.
Operation bodies and restriction predicates are Python objects, so the
loading application first rebuilds the *schema* (type definitions and
operations, e.g. by calling its usual ``build_*_schema`` function) and
then loads the state into it::

    dump_object_base(db, "base.json")
    ...
    fresh = ObjectBase()
    build_geometry_schema(fresh)
    load_object_base(fresh, "base.json")

GMR entries whose results are not JSON-representable (complex Python
values such as the company example's matrix lines) are persisted as
*invalid* entries: they rematerialize on first access after loading —
the lazy strategy's behaviour, applied to a cold start.

On top of the snapshot sits crash consistency: :func:`checkpoint`
atomically dumps the base and truncates its attached write-ahead log
(:mod:`repro.storage.wal`), and :func:`recover` loads a checkpoint and
replays the log's committed prefix through the ordinary instrumented
update paths, rebuilding GMR extensions, validity flags and the RRR as
a side effect.  :func:`base_state` and :func:`verify_recovery` support
differential durability testing.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.health import HealthState
from repro.core.restricted import RestrictionSpec
from repro.core.strategies import Strategy
from repro.errors import ReproError, StorageUnavailableError
from repro.gom.oid import Oid
from repro.storage.faultfs import REAL_FS, FileSystem
from repro.storage.wal import (
    WriteAheadLog,
    committed_prefix,
    read_records_merged,
)
from repro.storage.wal import decode_value as _decode_value

if TYPE_CHECKING:  # pragma: no cover
    from repro.gom.database import ObjectBase

FORMAT_VERSION = 1


class PersistenceError(ReproError):
    """The document cannot be produced or applied."""


# -- value encoding --------------------------------------------------------------


def _encode_value(value: Any) -> Any:
    if isinstance(value, Oid):
        return {"$oid": value.value}
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    raise PersistenceError(f"value {value!r} is not persistable")


def _try_encode(value: Any) -> tuple[bool, Any]:
    try:
        return True, _encode_value(value)
    except PersistenceError:
        return False, None


# -- dumping ---------------------------------------------------------------------


def _write_snapshot(document: dict, path: str, fs: FileSystem) -> None:
    """Write ``document`` to ``path`` with the atomic-replace protocol.

    temp file (``<path>.tmp``) + flush + fsync + atomic rename +
    directory fsync: a failure at *any* step — including a torn write
    into the temp file — leaves whatever previously lived at ``path``
    intact and readable.  The temp file is removed on failure
    (best-effort; a leftover ``.tmp`` is inert either way).
    """
    directory = os.path.dirname(os.path.abspath(path))
    tmp_path = path + ".tmp"
    try:
        handle = fs.open(tmp_path, "w", encoding="utf-8")
        try:
            json.dump(document, handle)
            handle.flush()
            fs.fsync(handle)
        finally:
            handle.close()
        fs.replace(tmp_path, path)
        fs.fsync_dir(directory)
    except BaseException:
        try:
            fs.remove(tmp_path)
        except OSError:
            pass
        raise


def dump_object_base(
    db: "ObjectBase", path: str, *, fs: FileSystem = REAL_FS
) -> None:
    """Write the object base's state to ``path`` as JSON.

    Atomic like :func:`checkpoint` (never truncate-in-place): a dump
    that dies mid-write leaves any previous snapshot at ``path``
    untouched.
    """
    document = to_document(db)
    _write_snapshot(document, path, fs)


def to_document(db: "ObjectBase") -> dict:
    # In-flight state cannot round-trip: an open batch holds deferred
    # maintenance events (closures over live queue objects) and an open
    # transaction holds an undo log — both would be silently dropped, so
    # both are rejected up front.
    if db.has_gmr_manager and db.gmr_manager._batch_depth > 0:
        raise PersistenceError(
            "cannot dump while a batch scope is open: pending maintenance "
            "events are not persistable — exit the batch (flush) first"
        )
    if hasattr(db, "_transactions") and db._transactions.in_transaction:
        raise PersistenceError(
            "cannot dump inside an open transaction: commit or abort first"
        )
    objects = []
    for obj in db.objects.iter_objects():
        record: dict[str, Any] = {
            "oid": obj.oid.value,
            "type": obj.type_name,
        }
        if obj.data is not None:
            record["data"] = {
                attr: _encode_value(value) for attr, value in obj.data.items()
            }
        if obj.elements is not None:
            record["elements"] = [
                _encode_value(element) for element in obj.elements
            ]
        objects.append(record)

    indexes = [
        {"type": type_name, "attr": attr}
        for (type_name, attr) in db._attr_indexes
    ]

    gmrs = []
    rrr_triples: list[dict] = []
    if db.has_gmr_manager:
        manager = db.gmr_manager
        for gmr in manager.gmrs():
            rows = []
            for row in gmr.rows():
                results = []
                valid = []
                for value, flag in zip(row.results, row.valid):
                    ok, encoded = _try_encode(value)
                    if ok:
                        results.append(encoded)
                        valid.append(flag)
                    else:
                        # Not JSON-representable: reload as invalid and
                        # let the first access rematerialize.
                        results.append(None)
                        valid.append(False)
                record = {
                    "args": [_encode_value(arg) for arg in row.args],
                    "results": results,
                    "valid": valid,
                }
                if any(row.error):
                    record["error"] = list(row.error)
                if row.support:
                    # Delta-engine support state only survives for
                    # columns whose result survived the encoding above.
                    support = {
                        str(index): state
                        for index, state in sorted(row.support.items())
                        if valid[index]
                    }
                    if support:
                        record["support"] = support
                rows.append(record)
            gmrs.append(
                {
                    "name": gmr.name,
                    "functions": [
                        {"type": info.type_name, "op": info.op_name}
                        for info in gmr.functions
                    ],
                    "complete": gmr.complete,
                    "strategy": gmr.strategy.value,
                    "storage": gmr.store.storage,
                    "layout": gmr.store.layout,
                    "capacity": gmr.capacity,
                    "row_placement": gmr.row_placement,
                    "restricted": gmr.restriction is not None,
                    "rows": rows,
                }
            )
        for oid, fid, args in manager.rrr.triples():
            rrr_triples.append(
                {
                    "oid": oid.value,
                    "fid": fid,
                    "args": [_encode_value(arg) for arg in args],
                }
            )

    document = {
        "format": FORMAT_VERSION,
        # The allocator high-water mark, not derivable from the live
        # objects: deleted objects burned OIDs that must stay burned.
        "next_oid": db.objects.peek_next_oid().value,
        "objects": objects,
        "attr_indexes": indexes,
        "gmrs": gmrs,
        "rrr": rrr_triples,
        # Storage health round-trips with the snapshot: a FAILED base
        # must not resurrect as HEALTHY by being reloaded.
        "health": db.health.dump_state(),
    }
    if db.has_gmr_manager:
        manager = db.gmr_manager
        document["stats"] = dict(vars(manager.stats))
        scheduler = manager.dump_scheduler_state()
        scheduler["heap"] = [
            [priority, seq, fid, [_encode_value(arg) for arg in args]]
            for priority, seq, fid, args in scheduler["heap"]
        ]
        scheduler["delayed"] = [
            [remaining, seq, fid, [_encode_value(arg) for arg in args]]
            for remaining, seq, fid, args in scheduler["delayed"]
        ]
        scheduler["attempts"] = [
            [fid, [_encode_value(arg) for arg in args], count]
            for fid, args, count in scheduler["attempts"]
        ]
        document["scheduler"] = scheduler
        # A crash must not resurrect a quarantined function as healthy:
        # breaker state (cooldowns as remaining durations) is part of
        # the snapshot.  The FaultPolicy itself is code-level
        # configuration and is not persisted.
        document["breaker"] = manager.breaker.dump_state()
        # Monotonic observability state (metric counters/histograms and
        # the per-function explain tallies) survives the checkpoint so a
        # recovered base keeps counting where the crashed one stopped.
        # Trace buffers and last-wave detail are ephemeral by design.
        document["observe"] = {
            "metrics": manager.metrics.dump_state(),
            "tallies": {
                fid: dict(tally)
                for fid, tally in manager.fid_tallies.items()
            },
        }
    return document


# -- loading ---------------------------------------------------------------------


def load_object_base(
    db: "ObjectBase",
    path: str,
    *,
    restrictions: dict[str, RestrictionSpec] | None = None,
) -> None:
    """Load a dumped state into ``db`` (schema must already be defined).

    ``restrictions`` re-supplies the restriction specs of restricted GMRs
    by GMR name (predicates contain code and are not persisted).
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    from_document(db, document, restrictions=restrictions)


def from_document(
    db: "ObjectBase",
    document: dict,
    *,
    restrictions: dict[str, RestrictionSpec] | None = None,
) -> None:
    if document.get("format") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported document format {document.get('format')!r}"
        )
    if len(db.objects) > 0:
        raise PersistenceError("load requires an empty object base")
    restrictions = restrictions or {}

    for record in document["objects"]:
        data = None
        if "data" in record:
            data = {
                attr: _decode_value(value)
                for attr, value in record["data"].items()
            }
        elements = None
        if "elements" in record:
            elements = [_decode_value(element) for element in record["elements"]]
        db.objects.restore(
            Oid(record["oid"]), record["type"], data=data, elements=elements
        )
    # Older documents lack the field; restore() already advanced past
    # every surviving OID, this additionally re-burns deleted ones.
    db.objects.advance_oid_floor(document.get("next_oid", 0))

    for index in document["attr_indexes"]:
        db.create_attr_index(index["type"], index["attr"])

    # Restored before the materialization early-return below: health
    # state travels with every document, GMRs or not.
    health = document.get("health")
    if health:
        db.health.restore_state(health)

    if not (
        document["gmrs"]
        or document.get("stats")
        or document.get("scheduler")
        or document.get("observe")
    ):
        return
    manager = db.gmr_manager
    for entry in document["gmrs"]:
        restriction = restrictions.get(entry["name"])
        if entry["restricted"] and restriction is None:
            raise PersistenceError(
                f"GMR {entry['name']} is restricted; pass its "
                f"RestrictionSpec via restrictions={{...}}"
            )
        gmr = manager.materialize(
            [(fn["type"], fn["op"]) for fn in entry["functions"]],
            complete=entry["complete"],
            strategy=Strategy(entry["strategy"]),
            storage=entry["storage"],
            name=entry["name"],
            capacity=entry.get("capacity"),
            row_placement=entry.get("row_placement", "separate"),
            # Older documents lack the field: ``None`` falls back to the
            # base's configured layout.  A document that records one
            # reopens with exactly the layout it was written under.
            layout=entry.get("layout"),
            restriction=restriction,
            populate=False,
        )
        for row in entry["rows"]:
            args = tuple(_decode_value(arg) for arg in row["args"])
            gmr.ensure_row(args)
            for fid, value, flag in zip(gmr.fids, row["results"], row["valid"]):
                if flag:
                    gmr.set_result(args, fid, _decode_value(value))
            for fid, errored in zip(gmr.fids, row.get("error", [])):
                if errored:
                    gmr.mark_error(args, fid)
            for index, state in row.get("support", {}).items():
                column = int(index)
                if column < len(gmr.fids):
                    gmr.set_support_state(args, gmr.fids[column], dict(state))

    for triple in document["rrr"]:
        manager._rrr_insert(
            Oid(triple["oid"]),
            triple["fid"],
            tuple(_decode_value(arg) for arg in triple["args"]),
        )

    stats = document.get("stats")
    if stats:
        for name, value in stats.items():
            if hasattr(manager.stats, name):
                setattr(manager.stats, name, value)
    scheduler = document.get("scheduler")
    if scheduler:
        manager.restore_scheduler_state(
            {
                "heap": [
                    [
                        priority,
                        seq,
                        fid,
                        [_decode_value(arg) for arg in args],
                    ]
                    for priority, seq, fid, args in scheduler.get("heap", [])
                ],
                "delayed": [
                    [
                        remaining,
                        seq,
                        fid,
                        [_decode_value(arg) for arg in args],
                    ]
                    for remaining, seq, fid, args in scheduler.get(
                        "delayed", []
                    )
                ],
                "attempts": [
                    [fid, [_decode_value(arg) for arg in args], count]
                    for fid, args, count in scheduler.get("attempts", [])
                ],
                "seq": scheduler.get("seq", 0),
                "frequency": scheduler.get("frequency", {}),
            }
        )
    breaker = document.get("breaker")
    if breaker:
        manager.breaker.restore_state(breaker)
    observe = document.get("observe")
    if observe:
        manager.metrics.restore_state(observe.get("metrics", {}))
        for fid, tally in observe.get("tallies", {}).items():
            manager._tally(fid).update(tally)


# -- durability: checkpoint + WAL recovery ---------------------------------------


@dataclass(frozen=True)
class CheckpointReport:
    """What :func:`checkpoint` wrote."""

    path: str
    #: Objects in the snapshot.
    objects: int = 0
    #: Materialized GMR rows in the snapshot (across all GMRs).
    gmr_rows: int = 0
    #: Whether an attached WAL was truncated behind the snapshot.
    wal_truncated: bool = False


def checkpoint(
    db: "ObjectBase", path: str, *, fs: FileSystem = REAL_FS
) -> CheckpointReport:
    """Atomically snapshot the base to ``path`` and truncate its WAL.

    The snapshot is written to ``<path>.tmp`` and renamed into place
    (after an fsync of the file and then of its directory), so a crash
    or I/O error during checkpointing leaves the previous checkpoint
    intact; only once the new one is durable is the attached write-ahead
    log truncated.  Scheduler queue, ``ManagerStats`` and the storage
    health state are part of the snapshot.  Raises
    :class:`PersistenceError` while a batch scope or a transaction is
    open (those are the atomicity boundaries).  Returns a
    :class:`CheckpointReport`.

    With a worker pool attached (``workers > 0``) the base is quiesced
    first — the pool drains every runnable revalidation — and the
    document is built under the update lock, so the snapshot is a
    transaction-consistent cut: no drain or elementary update is in
    flight while the state is serialized.

    Health interplay: a FAILED base refuses to checkpoint (its on-disk
    log tail is not trustworthy).  A DEGRADED_READ_ONLY base *may*
    checkpoint — snapshotting consistent in-memory state is exactly what
    one wants from a base whose log is refusing appends — but the
    quiesce is skipped (drains are paused while degraded and would only
    time out).  A snapshot write that fails records the I/O error and
    degrades; a WAL truncation that fails *after* the rename escalates
    to FAILED, because the new checkpoint plus the stale log would
    replay already-absorbed updates on recovery.

    ``fs`` substitutes the file system (fault injection); the default
    performs real I/O.
    """
    health = db.health
    if health.state is HealthState.FAILED:
        raise StorageUnavailableError(
            f"storage is failed: {health.reason or 'unknown cause'}; "
            "refusing to checkpoint over a trustworthy snapshot"
        )
    tracer = getattr(db, "observe", None)
    tracer = tracer.tracer if tracer is not None else None
    span = None
    if tracer is not None and tracer.enabled:
        span = tracer.begin("checkpoint", path=path)
    try:
        pool = getattr(db, "worker_pool", None)
        if pool is not None and health.writable:
            pool.quiesce()
        freeze = getattr(db, "_freeze", None)
        with freeze() if freeze is not None else nullcontext():
            document = to_document(db)
        try:
            _write_snapshot(document, path, fs)
        except Exception as exc:
            health.record_io_error(exc, site="checkpoint")
            raise StorageUnavailableError(
                f"checkpoint write failed (previous snapshot at {path} "
                f"left intact): {exc}"
            ) from exc
        truncated = db.wal is not None
        if db.wal is not None:
            try:
                db.wal.truncate()
            except Exception as exc:
                health.fail(f"wal.truncate after checkpoint rename: {exc}")
                raise StorageUnavailableError(
                    "checkpoint is durable but the write-ahead log could "
                    f"not be truncated behind it: {exc}; recovery from "
                    "this pair would double-replay absorbed updates"
                ) from exc
        report = CheckpointReport(
            path=path,
            objects=len(document["objects"]),
            gmr_rows=sum(len(entry["rows"]) for entry in document["gmrs"]),
            wal_truncated=truncated,
        )
    finally:
        if span is not None:
            tracer.end(span)
    return report


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover` found and did."""

    records_scanned: int = 0
    records_replayed: int = 0
    #: Trailing records inside a transaction that never terminated —
    #: the uncommitted suffix a crash left behind, discarded.
    records_discarded: int = 0
    #: Batch scopes the crash left open; recovery closes (flushes) them.
    batches_closed: int = 0


def recover(
    db: "ObjectBase",
    checkpoint_path: str,
    wal_path: str | None = None,
    *,
    restrictions: dict[str, RestrictionSpec] | None = None,
) -> RecoveryReport:
    """Load the checkpoint, then replay the WAL tail into ``db``.

    ``db`` must be empty with its schema already rebuilt (exactly like
    :func:`load_object_base`).  The committed prefix of the log — torn
    final frames and unterminated transaction suffixes dropped — is
    replayed through the ordinary instrumented update paths, so GMR
    extensions, validity flags, the RRR and ``ObjDepFct`` markings
    self-maintain during replay; batch markers reproduce the original
    flush timing.  The WAL is *not* attached to ``db``; callers that want
    to continue logging attach one afterwards.

    Recovery *consumes* the log: it closes scopes the crash left open
    and drops the uncommitted suffix, so the replayed log's tail no
    longer means what it says.  Resume service behind a fresh
    :func:`checkpoint` (which truncates the newly attached WAL) — never
    append to the log that was just replayed.
    """
    load_object_base(db, checkpoint_path, restrictions=restrictions)
    if wal_path is None:
        report = RecoveryReport()
    else:
        # Sharded bases persist per-shard WAL segments next to the base
        # path; read_records_merged stitches them back into one global
        # sequence (and degrades to a plain read for a single-file log).
        records = read_records_merged(wal_path)
        durable, discarded = committed_prefix(records)
        replayed, closed = _replay(db, durable)
        report = RecoveryReport(
            records_scanned=len(records),
            records_replayed=replayed,
            records_discarded=discarded,
            batches_closed=closed,
        )
    # Span ids and sequence numbers restart after a crash; the marker
    # event makes the discontinuity explicit in any attached sink.
    db.observe.tracer.reset(
        marker="recovery",
        checkpoint=checkpoint_path,
        records_replayed=report.records_replayed,
    )
    return report


def _replay(db: "ObjectBase", records: list) -> tuple[int, int]:
    """Re-execute committed WAL records; returns (replayed, batches closed)."""
    replayed = 0
    batch_stack: list = []
    closed = 0
    with db.wal_replay_scope():
        try:
            for record in records:
                kind = record["kind"]
                if kind == "set":
                    db.set_attr(
                        Oid(record["oid"]),
                        record["attr"],
                        _decode_value(record["value"]),
                    )
                elif kind == "insert":
                    db.collection_insert(
                        Oid(record["oid"]),
                        _decode_value(record["value"]),
                        position=record.get("pos"),
                    )
                elif kind == "remove":
                    db.collection_remove(
                        Oid(record["oid"]), _decode_value(record["value"])
                    )
                elif kind == "create":
                    data = record.get("data")
                    elements = record.get("elements")
                    db.replay_create(
                        Oid(record["oid"]),
                        record["type"],
                        data=(
                            {a: _decode_value(v) for a, v in data.items()}
                            if data is not None
                            else None
                        ),
                        elements=(
                            [_decode_value(e) for e in elements]
                            if elements is not None
                            else None
                        ),
                    )
                elif kind == "delete":
                    db.delete(Oid(record["oid"]))
                elif kind == "batch_begin":
                    scope = db.batch()
                    scope.__enter__()
                    batch_stack.append(scope)
                elif kind == "batch_flush":
                    db.gmr_manager.flush_batch()
                elif kind == "batch_end":
                    if batch_stack:
                        batch_stack.pop().__exit__(None, None, None)
                elif kind in ("txn_begin", "txn_commit", "txn_abort"):
                    # Atomicity was already resolved by committed_prefix;
                    # an aborted scope's inverse updates replay and net out.
                    pass
                else:
                    raise PersistenceError(
                        f"unknown WAL record kind {kind!r}"
                    )
                replayed += 1
        finally:
            # The crash left these batch scopes open: close them, which
            # flushes their pending maintenance (exactly what the live
            # process would have done at scope exit).
            closed = len(batch_stack)
            while batch_stack:
                batch_stack.pop().__exit__(None, None, None)
    return replayed, closed


# -- differential state digest ---------------------------------------------------


def base_state(db: "ObjectBase") -> dict:
    """A canonical digest of everything durability must preserve.

    Two object bases with equal digests agree on the object graph, every
    GMR's extension (arguments, results, validity flags), the RRR, the
    ``ObjDepFct`` markings, the scheduler's pending-revalidation queue
    and the manager counters.  Results that are not JSON-representable
    project to *invalid* — the same projection the dump applies — so a
    digest compares a base with its own persisted round-trip cleanly.
    """
    state: dict[str, Any] = {
        "objects": [
            {
                "oid": obj.oid.value,
                "type": obj.type_name,
                "data": (
                    {a: _encode_value(v) for a, v in obj.data.items()}
                    if obj.data is not None
                    else None
                ),
                "elements": (
                    [_encode_value(e) for e in obj.elements]
                    if obj.elements is not None
                    else None
                ),
            }
            for obj in sorted(
                db.objects.iter_objects(), key=lambda o: o.oid.value
            )
        ]
    }
    if not db.has_gmr_manager:
        state.update(gmrs={}, rrr=[], obj_dep={}, scheduler=None, stats=None)
        return state
    manager = db.gmr_manager
    gmrs: dict[str, list] = {}
    for gmr in manager.gmrs():
        rows = []
        for row in gmr.rows():
            valid = []
            results = []
            for value, flag in zip(row.results, row.valid):
                ok, encoded = _try_encode(value)
                usable = bool(flag and ok)
                valid.append(usable)
                results.append(encoded if usable else None)
            support = tuple(
                (index, tuple(sorted(state_dict.items())))
                for index, state_dict in sorted((row.support or {}).items())
                if valid[index]
            )
            rows.append(
                (
                    tuple(_encode_value(arg) for arg in row.args),
                    tuple(valid),
                    tuple(results),
                    tuple(row.error),
                    support,
                )
            )
        rows.sort(key=repr)
        gmrs[gmr.name] = rows
    state["gmrs"] = gmrs
    state["rrr"] = sorted(
        (
            (oid.value, fid, tuple(_encode_value(arg) for arg in args))
            for oid, fid, args in manager.rrr.triples()
        ),
        key=repr,
    )
    state["obj_dep"] = {
        obj.oid.value: tuple(sorted(obj.obj_dep_fct))
        for obj in db.objects.iter_objects()
        if obj.obj_dep_fct
    }
    scheduler = manager.dump_scheduler_state()
    state["scheduler"] = {
        "pending": sorted(
            (
                (
                    priority,
                    seq,
                    fid,
                    tuple(_encode_value(arg) for arg in args),
                )
                for priority, seq, fid, args in scheduler["heap"]
            ),
            key=repr,
        ),
        # Backoff deadlines are clock readings and differ across a
        # restart by construction; the digest compares *which* entries
        # are waiting, not when they become ripe.
        "delayed": sorted(
            (
                (seq, fid, tuple(_encode_value(arg) for arg in args))
                for _remaining, seq, fid, args in scheduler["delayed"]
            ),
            key=repr,
        ),
        "attempts": sorted(
            (
                (fid, tuple(_encode_value(arg) for arg in args), count)
                for fid, args, count in scheduler["attempts"]
            ),
            key=repr,
        ),
        "frequency": scheduler["frequency"],
    }
    # Same projection for the breaker: remaining cooldown is
    # time-dependent, everything else must survive a crash exactly.
    breaker = manager.breaker.dump_state()
    state["breaker"] = {
        fid: {
            key: value
            for key, value in record.items()
            if key != "cooldown_remaining"
        }
        for fid, record in breaker["fids"].items()
    }
    state["stats"] = dict(vars(manager.stats))
    return state


def verify_recovery(
    db: "ObjectBase",
    rebuild: "Callable[[ObjectBase], Any]",
    *,
    restrictions: dict[str, RestrictionSpec] | None = None,
    directory: str | None = None,
    mutate: "Callable[[ObjectBase], Any] | None" = None,
) -> "ObjectBase":
    """Checkpoint ``db``, crash-simulate, recover, and assert equivalence.

    The full durability cycle as a one-call check: attach a WAL (if none
    is attached), ``checkpoint()``, optionally run ``mutate(db)`` so the
    log has a tail to replay, then recover checkpoint + WAL into a fresh
    base whose schema ``rebuild`` re-creates, and compare
    :func:`base_state` digests.  Raises :class:`PersistenceError` on any
    divergence; returns the recovered base.  ``mutate`` must stick to
    replay-faithful updates (no queries, no strictly-encapsulated public
    operations — see :mod:`repro.gom.instrumentation`).
    """
    owns_directory = directory is None
    if owns_directory:
        directory = tempfile.mkdtemp(prefix="repro-durability-")
    ckpt_path = os.path.join(directory, "checkpoint.json")
    attached = None
    if db.wal is None:
        attached = WriteAheadLog(os.path.join(directory, "wal.log"))
        db.attach_wal(attached)
    wal_path = db.wal.path
    if wal_path is None:
        raise PersistenceError(
            "verify_recovery needs a path-backed WAL to re-read"
        )
    try:
        checkpoint(db, ckpt_path)
        if mutate is not None:
            mutate(db)
        fresh = type(db)(
            enforce_encapsulation=db.enforce_encapsulation, level=db.level
        )
        rebuild(fresh)
        recover(fresh, ckpt_path, wal_path, restrictions=restrictions)
        live = base_state(db)
        recovered = base_state(fresh)
        if live != recovered:
            diverging = [
                key for key in live if live[key] != recovered.get(key)
            ]
            raise PersistenceError(
                "recovered base diverges from the live one in: "
                + ", ".join(diverging)
            )
        return fresh
    finally:
        if attached is not None:
            db.detach_wal()
            attached.close()
        if owns_directory:
            import shutil

            shutil.rmtree(directory, ignore_errors=True)
