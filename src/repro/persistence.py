"""Saving and loading an object base (objects + materializations).

An object base persists as a JSON document holding the object graph
(OIDs preserved), the attribute indexes, every GMR's definition and
extension, and the Reverse Reference Relation — everything except code.
Operation bodies and restriction predicates are Python objects, so the
loading application first rebuilds the *schema* (type definitions and
operations, e.g. by calling its usual ``build_*_schema`` function) and
then loads the state into it::

    dump_object_base(db, "base.json")
    ...
    fresh = ObjectBase()
    build_geometry_schema(fresh)
    load_object_base(fresh, "base.json")

GMR entries whose results are not JSON-representable (complex Python
values such as the company example's matrix lines) are persisted as
*invalid* entries: they rematerialize on first access after loading —
the lazy strategy's behaviour, applied to a cold start.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.core.restricted import RestrictionSpec
from repro.core.strategies import Strategy
from repro.errors import ReproError
from repro.gom.oid import Oid

if TYPE_CHECKING:  # pragma: no cover
    from repro.gom.database import ObjectBase

FORMAT_VERSION = 1


class PersistenceError(ReproError):
    """The document cannot be produced or applied."""


# -- value encoding --------------------------------------------------------------


def _encode_value(value: Any) -> Any:
    if isinstance(value, Oid):
        return {"$oid": value.value}
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    raise PersistenceError(f"value {value!r} is not persistable")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"$oid"}:
        return Oid(value["$oid"])
    return value


def _try_encode(value: Any) -> tuple[bool, Any]:
    try:
        return True, _encode_value(value)
    except PersistenceError:
        return False, None


# -- dumping ---------------------------------------------------------------------


def dump_object_base(db: "ObjectBase", path: str) -> None:
    """Write the object base's state to ``path`` as JSON."""
    document = to_document(db)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)


def to_document(db: "ObjectBase") -> dict:
    objects = []
    for obj in db.objects.iter_objects():
        record: dict[str, Any] = {
            "oid": obj.oid.value,
            "type": obj.type_name,
        }
        if obj.data is not None:
            record["data"] = {
                attr: _encode_value(value) for attr, value in obj.data.items()
            }
        if obj.elements is not None:
            record["elements"] = [
                _encode_value(element) for element in obj.elements
            ]
        objects.append(record)

    indexes = [
        {"type": type_name, "attr": attr}
        for (type_name, attr) in db._attr_indexes
    ]

    gmrs = []
    rrr_triples: list[dict] = []
    if db.has_gmr_manager:
        manager = db.gmr_manager
        for gmr in manager.gmrs():
            rows = []
            for row in gmr.rows():
                results = []
                valid = []
                for value, flag in zip(row.results, row.valid):
                    ok, encoded = _try_encode(value)
                    if ok:
                        results.append(encoded)
                        valid.append(flag)
                    else:
                        # Not JSON-representable: reload as invalid and
                        # let the first access rematerialize.
                        results.append(None)
                        valid.append(False)
                rows.append(
                    {
                        "args": [_encode_value(arg) for arg in row.args],
                        "results": results,
                        "valid": valid,
                    }
                )
            gmrs.append(
                {
                    "name": gmr.name,
                    "functions": [
                        {"type": info.type_name, "op": info.op_name}
                        for info in gmr.functions
                    ],
                    "complete": gmr.complete,
                    "strategy": gmr.strategy.value,
                    "storage": gmr.store.storage,
                    "capacity": gmr.capacity,
                    "row_placement": gmr.row_placement,
                    "restricted": gmr.restriction is not None,
                    "rows": rows,
                }
            )
        for oid, fid, args in manager.rrr.triples():
            rrr_triples.append(
                {
                    "oid": oid.value,
                    "fid": fid,
                    "args": [_encode_value(arg) for arg in args],
                }
            )

    return {
        "format": FORMAT_VERSION,
        "objects": objects,
        "attr_indexes": indexes,
        "gmrs": gmrs,
        "rrr": rrr_triples,
    }


# -- loading ---------------------------------------------------------------------


def load_object_base(
    db: "ObjectBase",
    path: str,
    *,
    restrictions: dict[str, RestrictionSpec] | None = None,
) -> None:
    """Load a dumped state into ``db`` (schema must already be defined).

    ``restrictions`` re-supplies the restriction specs of restricted GMRs
    by GMR name (predicates contain code and are not persisted).
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    from_document(db, document, restrictions=restrictions)


def from_document(
    db: "ObjectBase",
    document: dict,
    *,
    restrictions: dict[str, RestrictionSpec] | None = None,
) -> None:
    if document.get("format") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported document format {document.get('format')!r}"
        )
    if len(db.objects) > 0:
        raise PersistenceError("load requires an empty object base")
    restrictions = restrictions or {}

    for record in document["objects"]:
        data = None
        if "data" in record:
            data = {
                attr: _decode_value(value)
                for attr, value in record["data"].items()
            }
        elements = None
        if "elements" in record:
            elements = [_decode_value(element) for element in record["elements"]]
        db.objects.restore(
            Oid(record["oid"]), record["type"], data=data, elements=elements
        )

    for index in document["attr_indexes"]:
        db.create_attr_index(index["type"], index["attr"])

    if not document["gmrs"]:
        return
    manager = db.gmr_manager
    for entry in document["gmrs"]:
        restriction = restrictions.get(entry["name"])
        if entry["restricted"] and restriction is None:
            raise PersistenceError(
                f"GMR {entry['name']} is restricted; pass its "
                f"RestrictionSpec via restrictions={{...}}"
            )
        gmr = manager.materialize(
            [(fn["type"], fn["op"]) for fn in entry["functions"]],
            complete=entry["complete"],
            strategy=Strategy(entry["strategy"]),
            storage=entry["storage"],
            name=entry["name"],
            capacity=entry.get("capacity"),
            row_placement=entry.get("row_placement", "separate"),
            restriction=restriction,
            populate=False,
        )
        for row in entry["rows"]:
            args = tuple(_decode_value(arg) for arg in row["args"])
            gmr.ensure_row(args)
            for fid, value, flag in zip(gmr.fids, row["results"], row["valid"]):
                if flag:
                    gmr.set_result(args, fid, _decode_value(value))

    for triple in document["rrr"]:
        manager._rrr_insert(
            Oid(triple["oid"]),
            triple["fid"],
            tuple(_decode_value(arg) for arg in triple["args"]),
        )
