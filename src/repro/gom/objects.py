"""Stored object representation.

A :class:`StoredObject` is the object manager's record of one object:
its OID, dynamic type, attribute values (atomic values or OID references)
or element list, its page placement, and the ``ObjDepFct`` marking set of
Sec. 5.2 — the ids of all materialized functions that used the object
during some materialization.
"""

from __future__ import annotations

from typing import Any

from repro.gom.oid import Oid
from repro.storage.pages import Placement

_BASE_SIZE = 24
_ATTR_SIZE = 16
_ELEMENT_SIZE = 8


class StoredObject:
    """One live object in the object base."""

    __slots__ = (
        "oid",
        "type_name",
        "data",
        "elements",
        "obj_dep_fct",
        "placement",
        "deleted",
    )

    def __init__(
        self,
        oid: Oid,
        type_name: str,
        *,
        data: dict[str, Any] | None = None,
        elements: list[Any] | None = None,
        placement: Placement | None = None,
    ) -> None:
        self.oid = oid
        self.type_name = type_name
        self.data = data
        self.elements = elements
        #: ObjDepFct (Sec. 5.2): ids of materialized functions whose
        #: materialization accessed this object.  Maintained in lockstep
        #: with the RRR by the GMR manager.
        self.obj_dep_fct: set[str] = set()
        self.placement = placement
        self.deleted = False

    def size_estimate(self) -> int:
        """Approximate on-page size in bytes (drives page placement)."""
        size = _BASE_SIZE
        if self.data is not None:
            size += _ATTR_SIZE * len(self.data)
        if self.elements is not None:
            size += _ELEMENT_SIZE * max(len(self.elements), 4)
        return size

    def __repr__(self) -> str:
        return f"<{self.type_name} {self.oid!r}>"
