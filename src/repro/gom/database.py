"""The object base: schema + object manager + storage + GMR hooks.

:class:`ObjectBase` is the facade a user of the library works with.  It
wires together the schema, the object manager, the simulated page store
and buffer, the access tracers and — once materialization is enabled —
the GMR manager.  All elementary update operations (``set_A``,
``insert``, ``remove``, ``create``, ``delete``) run through this class,
which is where the paper's *schema rewrite* notification mechanism lives:
depending on the selected :class:`InstrumentationLevel` the update paths
notify the GMR manager exactly as the modified operations of Figures 4
and 5 (and the information-hiding variant of Sec. 5.3) would.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import warnings
from contextlib import contextmanager, nullcontext
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping

from repro.errors import (
    EncapsulationError,
    InternalError,
    NotSetStructuredError,
    SchemaError,
    StorageUnavailableError,
    TypeCheckError,
    UnknownAttributeError,
    UnknownOperationError,
)
from repro.gom.handles import Handle, unwrap
from repro.gom.instrumentation import InstrumentationLevel
from repro.gom.object_manager import ObjectManager
from repro.gom.objects import StoredObject
from repro.gom.oid import Oid
from repro.gom.schema import Schema
from repro.gom.tracing import AccessTracer
from repro.gom.types import (
    ELEMENTS_ATTR,
    OperationDef,
    TypeDefinition,
    TypeKind,
    is_atomic_type,
    writer_name,
)
from repro.storage.btree import BPlusTree
from repro.storage.pages import BufferManager, CostModel, PageStore
from repro.storage.wal import (
    ShardedWriteAheadLog,
    WriteAheadLog,
    encode_value as _wal_encode,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.function_registry import FunctionInfo, FunctionRegistry
    from repro.core.manager import GMRManager
    from repro.observe.config import MaterializationConfig

_ATOMIC_DEFAULTS: dict[str, Any] = {
    "float": 0.0,
    "int": 0,
    "string": "",
    "bool": False,
    "char": " ",
    "decimal": 0.0,
}


class _InvocationState(threading.local):
    """Per-thread function-invocation state of one object base.

    Holds the access-tracer stack and the nesting depths that the
    invocation paths maintain (``_opaque_depth`` / ``_suppress_depth`` /
    ``_materializing_depth``).  Subclassing ``threading.local`` gives
    every thread — the foreground mutator and each pool drain thread —
    its own independent copy, which is what makes concurrent
    rematerializations trace independent accessed-object sets.
    """

    def __init__(self) -> None:
        self.tracers: list[AccessTracer] = []
        self.opaque_depth = 0
        self.suppress_depth = 0
        self.materializing_depth = 0


class ObjectBase:
    """A GOM object base with optional function materialization."""

    def __init__(
        self,
        *,
        buffer_pages: int | None = None,
        page_size: int = 4096,
        enforce_encapsulation: bool = True,
        level: InstrumentationLevel | None = None,
        config: "MaterializationConfig | None" = None,
    ) -> None:
        # Imported lazily: repro.observe.config itself imports from
        # repro.core and repro.gom, so a module-level import here would
        # close a cycle when repro.core is the import entry point.
        from repro.observe.config import MaterializationConfig, Observability

        if config is None:
            config = MaterializationConfig()
            if level is not None:
                config = dataclasses.replace(config, level=level)
        elif level is not None:
            warnings.warn(
                "passing both level= and config= to ObjectBase is "
                "deprecated; set MaterializationConfig(level=...) only",
                DeprecationWarning,
                stacklevel=2,
            )
            config = dataclasses.replace(config, level=level)
        #: The unified configuration surface (strategy, batching, fault
        #: policy, observability) — see :mod:`repro.observe.config`.
        self.config = config
        #: The object base's update lock: every elementary update (and
        #: any maintenance entered from one) runs under it when a
        #: revalidation worker pool or a sharded engine is configured.
        #: With ``workers=0, shards=1`` it is a shared no-op context, so
        #: the single-threaded paths stay bit-for-bit unchanged.
        #: Reentrant: update paths nest (``invoke`` → ``set_attr`` →
        #: invalidation → compensation).
        if config.workers > 0 or config.shards > 1:
            self._update_lock: Any = threading.RLock()
        else:
            self._update_lock = nullcontext()
        #: Shard count and per-shard drain gates.  Each shard lock
        #: serializes that shard's background drains against freezes and
        #: engine-wide maintenance sweeps: a pool worker holds the
        #: owning shard's lock around each single-entry drain, while
        #: writers take only the global update lock (their conflicts
        #: with in-flight drains are resolved by the ``_write_epoch``
        #: seqlock below, not by blocking).  ``None`` when unsharded —
        #: no new objects on the shards=1 path.
        self._shards = config.shards
        if config.shards > 1:
            self._shard_locks: "tuple[threading.RLock, ...] | None" = tuple(
                threading.RLock() for _ in range(config.shards)
            )
        else:
            self._shard_locks = None
        #: Write-epoch seqlock (sharded engines only).  Every elementary
        #: update increments it once on entry and once on exit, so an
        #: odd value means an update is mutating the object graph right
        #: now.  Background drains — which deliberately do *not* take
        #: the global update lock when sharded — snapshot the epoch
        #: before computing a rematerialization and re-check it before
        #: committing; any movement defers the entry instead of
        #: publishing a result computed from torn state.
        self._write_epoch = 0
        #: Elementary-update nesting depth of the thread holding the
        #: update lock (listeners and invoked method bodies may issue
        #: nested elementary updates); the epoch flips only at the
        #: outermost level so it stays odd for the whole composite
        #: update.  Only ever touched under the global update lock.
        self._update_depth = 0
        #: Observability facade: ``db.observe.tracer`` and
        #: ``db.observe.metrics`` (see :mod:`repro.observe`).
        self.observe = Observability(config.observe)
        #: Storage health state machine (HEALTHY / DEGRADED_READ_ONLY /
        #: FAILED — see :mod:`repro.core.health`).  Imported lazily for
        #: the same cycle reason as MaterializationConfig above.
        from repro.core.health import HealthMonitor

        self.health = HealthMonitor()
        self._wire_health_observability()
        self.schema = Schema()
        self.page_store = PageStore(page_size=page_size)
        if buffer_pages is None:
            self.buffer = BufferManager()
        else:
            self.buffer = BufferManager(capacity=buffer_pages)
        self.cost_model = CostModel()
        self.objects = ObjectManager(self.schema, self.page_store)
        self.enforce_encapsulation = enforce_encapsulation

        self._gmr: "GMRManager | None" = None
        self._functions: "FunctionRegistry | None" = None
        #: Per-thread invocation state (access tracers and the opaque /
        #: suppress / materializing depths).  Thread-local because a
        #: background drain's rematerialization must trace only the
        #: objects *its* function body touches — a shared tracer list
        #: would let concurrent drains pollute each other's accessed
        #: sets and materialize spurious RRR rows.  Single-threaded
        #: bases pay one attribute indirection (the property shims
        #: below), nothing else.
        self._invocation = _InvocationState()
        self._member_plans: dict[tuple[str, str], tuple] = {}
        self._strict_cache: dict[str, bool] = {}
        self._attr_indexes: dict[tuple[str, str], BPlusTree] = {}
        #: Update listeners: callables invoked after every elementary
        #: update with (kind, oid, type_name, attr, old, new) where kind
        #: is 'set' | 'insert' | 'remove' | 'create' | 'delete'.  Used by
        #: subsystems that maintain derived structures outside the GMR
        #: manager (e.g. Access Support Relations).
        self._update_listeners: list = []
        #: Guards listener (un)registration; see
        #: :meth:`register_update_listener` for the snapshot semantics.
        self._listener_lock = threading.Lock()
        self._wal: WriteAheadLog | ShardedWriteAheadLog | None = None
        self._wal_suppress = 0
        #: The background revalidation pool (``config.workers > 0``);
        #: ``None`` single-threaded.  See :mod:`repro.concurrency`.
        self.worker_pool = None
        if config.workers > 0:
            from repro.concurrency.pool import RevalidationWorkerPool

            self.worker_pool = RevalidationWorkerPool(
                self.gmr_manager, config.workers
            )
            self.worker_pool.start()

    @property
    def level(self) -> InstrumentationLevel:
        """The active instrumentation level (``config.level``)."""
        return self.config.level

    @level.setter
    def level(self, value: InstrumentationLevel) -> None:
        self.config.level = value

    # -- per-thread invocation state (shims over ``_invocation``) ------
    # The invocation paths read and write these exactly as they did when
    # they were plain attributes; the properties reroute every access to
    # the current thread's ``_InvocationState`` slot.

    @property
    def _tracers(self) -> list[AccessTracer]:
        return self._invocation.tracers

    @_tracers.setter
    def _tracers(self, value: list[AccessTracer]) -> None:
        self._invocation.tracers = value

    @property
    def _opaque_depth(self) -> int:
        return self._invocation.opaque_depth

    @_opaque_depth.setter
    def _opaque_depth(self, value: int) -> None:
        self._invocation.opaque_depth = value

    @property
    def _suppress_depth(self) -> int:
        return self._invocation.suppress_depth

    @_suppress_depth.setter
    def _suppress_depth(self, value: int) -> None:
        self._invocation.suppress_depth = value

    @property
    def _materializing_depth(self) -> int:
        return self._invocation.materializing_depth

    @_materializing_depth.setter
    def _materializing_depth(self, value: int) -> None:
        self._invocation.materializing_depth = value

    # ------------------------------------------------------------------
    # Schema definition
    # ------------------------------------------------------------------

    def define_tuple_type(
        self,
        name: str,
        attributes: Mapping[str, str],
        *,
        supertype: str = "ANY",
        public: Iterable[str] | None = None,
    ) -> TypeDefinition:
        """Define a tuple-structured type (a ``type ... is ...`` frame)."""
        definition = TypeDefinition.tuple_type(
            name, attributes, supertype=supertype, public=public
        )
        self.schema.add_type(definition)
        self._invalidate_plan_cache()
        return definition

    def define_set_type(
        self, name: str, element_type: str, *, public: Iterable[str] | None = None
    ) -> TypeDefinition:
        definition = TypeDefinition.set_type(name, element_type, public=public)
        self.schema.add_type(definition)
        self._invalidate_plan_cache()
        return definition

    def define_list_type(
        self, name: str, element_type: str, *, public: Iterable[str] | None = None
    ) -> TypeDefinition:
        definition = TypeDefinition.list_type(name, element_type, public=public)
        self.schema.add_type(definition)
        self._invalidate_plan_cache()
        return definition

    def define_operation(
        self,
        type_name: str,
        name: str,
        param_types: Iterable[str],
        result_type: str,
        body: Callable[..., Any],
        *,
        doc: str = "",
    ) -> OperationDef:
        """Declare and define an operation on ``type_name``."""
        operation = self.schema.type(type_name).define_operation(
            name, param_types, result_type, body, doc=doc
        )
        self._invalidate_plan_cache()
        return operation

    def make_public(self, type_name: str, *members: str) -> None:
        """Add members to a type's public clause."""
        self.schema.type(type_name).make_public(*members)
        self._invalidate_plan_cache()

    def set_strict_encapsulation(self, type_name: str, strict: bool = True) -> None:
        """Mark a type strictly encapsulated (Sec. 5.3)."""
        self.schema.type(type_name).strict_encapsulation = strict
        self._strict_cache.clear()

    def declare_invalidates(
        self, type_name: str, operation: str, functions: Iterable[str]
    ) -> None:
        """Supply an ``InvalidatedFct`` specification (Def. 5.3)."""
        self.schema.type(type_name).declare_invalidates(operation, functions)

    def _invalidate_plan_cache(self) -> None:
        self._member_plans.clear()
        self._strict_cache.clear()
        if self._gmr is not None:
            # Schema changes can alter restriction-predicate RelAttr
            # typing and member dispatch; drop the manager's precompiled
            # invalidation plans alongside the member-plan caches.
            self._gmr.invalidate_plans()

    # ------------------------------------------------------------------
    # Materialization wiring
    # ------------------------------------------------------------------

    @property
    def functions(self) -> "FunctionRegistry":
        if self._functions is None:
            from repro.core.function_registry import FunctionRegistry

            self._functions = FunctionRegistry(self)
        return self._functions

    @property
    def gmr_manager(self) -> "GMRManager":
        if self._gmr is None:
            from repro.core.manager import GMRManager

            self._gmr = GMRManager(self)
        return self._gmr

    @property
    def has_gmr_manager(self) -> bool:
        return self._gmr is not None

    @property
    def asr_manager(self):
        """The Access Support Relation manager (created on first use)."""
        if not hasattr(self, "_asr_manager"):
            from repro.asr.manager import ASRManager

            self._asr_manager = ASRManager(self)
        return self._asr_manager

    @property
    def transactions(self):
        """The transaction manager (created on first use)."""
        if not hasattr(self, "_transactions"):
            from repro.gom.transactions import TransactionManager

            self._transactions = TransactionManager(self)
        return self._transactions

    def transaction(self):
        """``with db.transaction() as txn:`` — atomic update scope with
        rollback that keeps every materialization consistent."""
        from repro.gom.transactions import TransactionScope

        return TransactionScope(self.transactions)

    def quiesce(self, timeout: float = 30.0) -> bool:
        """Drain every runnable deferred revalidation and settle.

        With a worker pool (``workers > 0``) this wakes the workers and
        blocks until the scheduler's ready queue is empty and no drain
        is in flight; with ``workers=0`` it drains the scheduler
        synchronously on the calling thread.  Either way, afterwards
        the GMR extensions are exactly what a single-threaded
        ``scheduler.revalidate()`` sweep would have produced — the
        state the Def. 3.2 consistency oracle and checkpointing expect.
        Returns False if the pool failed to settle within ``timeout``
        seconds.
        """
        if self.worker_pool is not None:
            return self.worker_pool.quiesce(timeout)
        if self._gmr is not None:
            manager = self._gmr
            locks = self._shard_locks
            if locks is None:
                manager.scheduler.revalidate()
            else:
                # Sharded, no pool: drain each shard's scheduler under
                # its shard lock, looping because a sweep can requeue
                # work (retry backoff, epoch deferrals) onto any shard.
                # Transient epoch-conflict defers ripen within
                # milliseconds and count as unsettled — wait them out
                # (bounded by ``timeout``) rather than declaring
                # convergence with an entry still INVALID.
                deadline = time.monotonic() + timeout
                while any(
                    s.unsettled_pending() for s in manager.schedulers
                ):
                    progressed = False
                    for shard, scheduler in enumerate(manager.schedulers):
                        if scheduler.ready_pending() == 0:
                            continue
                        with locks[shard]:
                            if scheduler.revalidate():
                                progressed = True
                    if progressed:
                        continue
                    if time.monotonic() >= deadline:
                        return False
                    time.sleep(0.001)
        return True

    @contextmanager
    def _freeze(self) -> Iterator[None]:
        """Hold every lock of the engine: no update and no drain can run.

        Takes the global update lock, then every shard lock in
        ascending order (the one place more than one shard lock is ever
        held).  Checkpointing snapshots under this so a sharded base's
        document captures a cut where no rematerialization is half
        committed.  Unsharded this is exactly the update lock.
        """
        with self._update_lock:
            locks = self._shard_locks
            if locks is None:
                yield
                return
            for lock in locks:
                lock.acquire()
            try:
                yield
            finally:
                for lock in reversed(locks):
                    lock.release()

    @contextmanager
    def _epoch_scope(self) -> Iterator[None]:
        """Mark an elementary update in the write-epoch seqlock.

        Entered (under the global update lock) by every elementary
        update wrapper of a sharded base.  The epoch increments at the
        start and end of the *outermost* update only — nested elementary
        updates issued by listeners or invoked method bodies keep it odd
        for the whole composite mutation, which is the invariant the
        drain-side conflict check relies on.
        """
        depth = self._update_depth
        self._update_depth = depth + 1
        if depth == 0:
            self._write_epoch += 1
        try:
            yield
        finally:
            self._update_depth = depth
            if depth == 0:
                self._write_epoch += 1

    def close(self) -> None:
        """Stop the worker pool (if any) and detach the WAL.

        If a worker fails to exit within the stop timeout (blocked
        behind a long-held update lock), the WAL is detached — so
        foreground appends stop — but its file is left open rather
        than closed under a straggler that could still drain and
        append, which would raise in a daemon thread.
        """
        stopped = True
        if self.worker_pool is not None:
            stopped = self.worker_pool.stop()
        wal = self.detach_wal()
        if wal is not None and stopped:
            wal.close()

    def batch(self):
        """``with db.batch():`` — a batched-maintenance scope.

        Elementary updates inside the block apply to the object base
        immediately, but GMR maintenance notifications are coalesced in
        an :class:`~repro.core.batch.InvalidationQueue` and replayed at
        block exit (or before any query issued inside the block): one
        grouped RRR probe per distinct updated object instead of one per
        elementary update.  See :mod:`repro.core.batch`.
        """
        return self.gmr_manager.batch()

    # ------------------------------------------------------------------
    # Durability (write-ahead logging)
    # ------------------------------------------------------------------

    def attach_wal(self, wal: WriteAheadLog | ShardedWriteAheadLog) -> None:
        """Attach a write-ahead log: every elementary update is appended
        to it *before* it is applied (see :mod:`repro.storage.wal`).
        A :class:`~repro.storage.wal.ShardedWriteAheadLog` attaches the
        same way — the object base is oblivious to the segmentation."""
        self._wal = wal
        observe = self.observe
        if observe.metrics.enabled or observe.tracer.enabled:
            appends = observe.metrics.counter("wal.appends")
            nbytes_total = observe.metrics.counter("wal.bytes")
            tracer = observe.tracer

            def _on_append(record: dict, nbytes: int) -> None:
                appends.inc()
                nbytes_total.inc(nbytes)
                if tracer.enabled:
                    tracer.event(
                        "wal.append", kind=record.get("kind"), bytes=nbytes
                    )

            wal.on_append = _on_append

    def _wire_health_observability(self) -> None:
        """Bind health transitions to the gauges and trace events.

        ``health.state`` carries the numeric severity (0 HEALTHY,
        1 DEGRADED_READ_ONLY, 2 FAILED), ``storage.io_errors`` the
        lifetime I/O-error count; transitions emit ``health.degrade`` /
        ``health.rearm`` / ``health.fail`` trace events.
        """
        from repro.core.health import STATE_CODES

        observe = self.observe
        if not (observe.metrics.enabled or observe.tracer.enabled):
            return
        state_gauge = observe.metrics.gauge("health.state")
        errors_gauge = observe.metrics.gauge("storage.io_errors")
        tracer = observe.tracer

        def _on_transition(event, old, new, reason) -> None:
            state_gauge.set(STATE_CODES[new])
            if tracer.enabled:
                tracer.event(
                    f"health.{event}",
                    old=old.value,
                    new=new.value,
                    reason=reason,
                )

        def _on_io_error(total: int) -> None:
            errors_gauge.set(total)

        self.health.on_transition = _on_transition
        self.health.on_io_error = _on_io_error

    def detach_wal(self) -> WriteAheadLog | ShardedWriteAheadLog | None:
        wal, self._wal = self._wal, None
        if wal is not None:
            wal.on_append = None
        return wal

    @property
    def wal(self) -> WriteAheadLog | ShardedWriteAheadLog | None:
        return self._wal

    @contextmanager
    def wal_replay_scope(self) -> Iterator[None]:
        """Suppress logging while recovery replays already-logged updates
        through the ordinary update paths."""
        self._wal_suppress += 1
        try:
            yield
        finally:
            self._wal_suppress -= 1

    def _wal_log(self, record: dict) -> None:
        """Append one record durably, mediated by the health state.

        WAL-before-apply: every elementary update calls this *before*
        mutating, so a raise here is a clean refusal — there is nothing
        to roll back, and in-memory state still matches the durable log.

        A failed append trips the health monitor to DEGRADED_READ_ONLY
        and surfaces as :class:`StorageUnavailableError`.  While
        degraded, appends are refused until the probe cooldown elapses;
        the first update after it acts as the probe — the torn WAL tail
        is repaired (truncated back to the last durable frame boundary)
        and the append retried.  Success re-arms HEALTHY; a repair that
        itself fails escalates to FAILED, because a frame appended after
        torn bytes would be silently cut by the recovery reader.
        """
        wal = self._wal
        if wal is None or self._wal_suppress:
            return
        health = self.health
        was_degraded = not health.writable
        if was_degraded:
            if not health.probe_eligible():
                health.require_writable()
            try:
                wal.repair()
            except Exception as exc:
                health.fail(f"wal.repair: {exc}")
                raise StorageUnavailableError(
                    f"write-ahead log tail could not be repaired: {exc}"
                ) from exc
        try:
            wal.append(record)
        except Exception as exc:
            health.record_io_error(exc, site="wal.append")
            raise StorageUnavailableError(
                f"write-ahead log append failed: {exc}"
            ) from exc
        if was_degraded:
            try:
                health.rearm()
            except StorageUnavailableError:
                pass  # raced to FAILED; the next update will refuse

    def replay_create(
        self,
        oid: Oid,
        type_name: str,
        *,
        data: Mapping[str, Any] | None = None,
        elements: Iterable[Any] | None = None,
    ) -> Handle:
        """Re-execute a logged ``create`` under its original OID.

        Runs the full elementary-create path (indexes, GMR extension
        adaptation, listeners) so recovery maintains derived structures
        exactly like the live run did.
        """
        obj = self.objects.restore(
            oid,
            type_name,
            data=dict(data) if data is not None else None,
            elements=list(elements) if elements is not None else None,
        )
        self.buffer.touch(obj.placement.page_id, write=True)
        self._index_new_object(obj)
        self._notify_create(obj)
        return Handle(self, obj.oid)

    @property
    def materializing(self) -> bool:
        return self._materializing_depth > 0

    @contextmanager
    def materialization_scope(self) -> Iterator[None]:
        """Evaluate code as part of a materialization: nested invocations
        of materialized functions run their real bodies instead of being
        mapped to GMR forward queries."""
        self._materializing_depth += 1
        try:
            yield
        finally:
            self._materializing_depth -= 1

    def materialize(self, functions, **kwargs):
        """Create a GMR over ``functions`` — see
        :meth:`repro.core.manager.GMRManager.materialize`."""
        return self.gmr_manager.materialize(functions, **kwargs)

    def define_delta(self, function, *, on=None, aggregate=None, name=""):
        """Declare delta maintenance for a materialized function.

        ``on={(type_name, update_op): handler}`` attaches
        ``(old_result, update) -> new_result`` handlers;
        ``aggregate=`` declares a self-maintainable aggregate shape
        (:func:`repro.core.delta.sum_of` and friends).  Declarations
        take effect under ``MaterializationConfig(maintenance="delta")``
        — see :meth:`repro.core.manager.GMRManager.register_delta`.
        """
        return self.gmr_manager.register_delta(
            function, on=on, aggregate=aggregate, name=name
        )

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    @contextmanager
    def trace(self) -> Iterator[AccessTracer]:
        """Record every object/attribute access within the block."""
        tracer = AccessTracer()
        self._tracers.append(tracer)
        try:
            yield tracer
        finally:
            self._tracers.remove(tracer)

    def _record_access(self, oid: Oid, decl_type: str, attribute: str) -> None:
        if self._opaque_depth:
            return
        for tracer in self._tracers:
            tracer.record_object(oid)
            tracer.record_attribute(decl_type, attribute)

    def _record_object_only(self, oid: Oid) -> None:
        for tracer in self._tracers:
            tracer.record_object(oid)

    # ------------------------------------------------------------------
    # Object lifecycle
    # ------------------------------------------------------------------

    def new(self, type_name: str, **attributes: Any) -> Handle:
        """Create a tuple-structured object (the elementary ``create``)."""
        if self._shard_locks is None:
            with self._update_lock:
                return self._new_impl(type_name, attributes)
        with self._update_lock, self._epoch_scope():
            return self._new_impl(type_name, attributes)

    def _new_impl(self, type_name: str, attributes: dict) -> Handle:
        definition = self.schema.type(type_name)
        if definition.kind is not TypeKind.TUPLE:
            raise SchemaError(
                f"{type_name} is {definition.kind.value}-structured; "
                f"use new_collection for sets and lists"
            )
        declared = self.schema.all_attributes(type_name)
        data: dict[str, Any] = {}
        for attr, attr_def in declared.items():
            if attr in attributes:
                value = unwrap(attributes.pop(attr))
                self.schema.check_value(
                    attr_def.type_name, value, type_of_oid=self.objects.type_of
                )
                data[attr] = value
            elif is_atomic_type(attr_def.type_name):
                data[attr] = _ATOMIC_DEFAULTS.get(attr_def.type_name)
            else:
                data[attr] = None
        if attributes:
            unknown = ", ".join(sorted(attributes))
            raise UnknownAttributeError(f"{type_name} has no attribute(s) {unknown}")
        if self._wal is not None and not self._wal_suppress:
            self._wal_log(
                {
                    "kind": "create",
                    "oid": self.objects.peek_next_oid().value,
                    "type": type_name,
                    "data": {a: _wal_encode(v) for a, v in data.items()},
                }
            )
        obj = self.objects.create(type_name, data=data)
        self.buffer.touch(obj.placement.page_id, write=True)
        self._index_new_object(obj)
        self._notify_create(obj)
        return Handle(self, obj.oid)

    def new_collection(
        self, type_name: str, elements: Iterable[Any] = ()
    ) -> Handle:
        """Create a set- or list-structured object."""
        if self._shard_locks is None:
            with self._update_lock:
                return self._new_collection_impl(type_name, elements)
        with self._update_lock, self._epoch_scope():
            return self._new_collection_impl(type_name, elements)

    def _new_collection_impl(
        self, type_name: str, elements: Iterable[Any]
    ) -> Handle:
        definition = self.schema.type(type_name)
        if not definition.is_collection():
            raise SchemaError(f"{type_name} is not set/list-structured")
        element_type = definition.element_type
        if element_type is None:
            # A collection definition always carries its element type;
            # reaching this means the schema object was corrupted.
            raise SchemaError(
                f"collection type {type_name} declares no element type"
            )
        stored: list[Any] = []
        for element in elements:
            raw = unwrap(element)
            self.schema.check_value(
                element_type, raw, type_of_oid=self.objects.type_of
            )
            if definition.is_set() and raw in stored:
                continue
            stored.append(raw)
        if self._wal is not None and not self._wal_suppress:
            self._wal_log(
                {
                    "kind": "create",
                    "oid": self.objects.peek_next_oid().value,
                    "type": type_name,
                    "elements": [_wal_encode(e) for e in stored],
                }
            )
        obj = self.objects.create(type_name, elements=stored)
        self.buffer.touch(obj.placement.page_id, write=True)
        self._notify_create(obj)
        return Handle(self, obj.oid)

    def delete(self, target: Handle | Oid) -> None:
        """Delete an object (the elementary ``delete``, Figure 4/5)."""
        if self._shard_locks is None:
            with self._update_lock:
                self._delete_impl(target)
            return
        with self._update_lock, self._epoch_scope():
            self._delete_impl(target)

    def _delete_impl(self, target: Handle | Oid) -> None:
        oid = unwrap(target)
        if hasattr(self, "_transactions"):
            self._transactions.check_delete_allowed(oid)
        obj = self.objects.get(oid)
        self._wal_log({"kind": "delete", "oid": oid.value})
        gmr = self._gmr
        if gmr is not None and self.level.notifies:
            if (
                self.level >= InstrumentationLevel.OBJ_DEP
                and not gmr.batch_conservative
            ):
                # Figure 5: check ObjDepFct before bothering the manager.
                # (With a create pending in an open batch the marking may
                # not be materialized yet, so the check is skipped.)
                if obj.obj_dep_fct:
                    gmr.forget_object(oid)
            else:
                gmr.forget_object(oid)
        self._index_drop_object(obj)
        self.objects.delete(oid)
        # Listeners fire after the object is gone so derived structures
        # recompute against the post-delete state.
        self._fire_listeners("delete", oid, obj.type_name, None, None, None)

    def handle(self, oid: Oid | Handle) -> Handle:
        return Handle(self, unwrap(oid))

    def type_of(self, oid: Oid) -> str:
        return self.objects.type_of(oid)

    def extension(self, type_name: str) -> list[Handle]:
        """``ext(t)`` as handles (includes subtype instances)."""
        return [Handle(self, oid) for oid in self.objects.extension(type_name)]

    # ------------------------------------------------------------------
    # Member plans (cached resolution for the hot access path)
    # ------------------------------------------------------------------

    def _plan(self, type_name: str, member: str) -> tuple:
        key = (type_name, member)
        plan = self._member_plans.get(key)
        if plan is None:
            plan = self._build_plan(type_name, member)
            self._member_plans[key] = plan
        return plan

    def _build_plan(self, type_name: str, member: str) -> tuple:
        schema = self.schema
        attributes = schema.all_attributes(type_name)
        if member in attributes:
            decl = schema.attribute_declaring_type(type_name, member)
            public = schema.is_public(type_name, member)
            return ("attr", member, decl, attributes[member].type_name, public)
        if member.startswith("set_"):
            attr = member[len("set_") :]
            if attr in attributes:
                decl = schema.attribute_declaring_type(type_name, attr)
                public = schema.is_public(type_name, member)
                return ("setter", attr, decl, attributes[attr].type_name, public)
        try:
            decl, operation = schema.resolve_operation(type_name, member)
        except UnknownOperationError:
            raise UnknownAttributeError(
                f"{type_name} has no attribute or operation {member}"
            ) from None
        public = schema.is_public(type_name, member)
        return ("op", member, decl, operation, public)

    def _is_strict(self, type_name: str) -> bool:
        strict = self._strict_cache.get(type_name)
        if strict is None:
            strict = any(
                definition.strict_encapsulation
                for definition in self.schema.supertype_chain(type_name)
            )
            self._strict_cache[type_name] = strict
        return strict

    def handle_member(self, handle: Handle, member: str) -> Any:
        """Resolve ``handle.member`` — attribute read, setter or operation."""
        oid = handle.oid
        obj = self.objects.get(oid)
        plan = self._plan(obj.type_name, member)
        kind = plan[0]
        if kind == "attr":
            _, attr, decl, _attr_type, public = plan
            if self.enforce_encapsulation and not handle._internal and not public:
                raise EncapsulationError(
                    f"{obj.type_name}.{attr} is not public"
                )
            value = self._read_attr(obj, attr, decl)
            if isinstance(value, Oid):
                return Handle(self, value, internal=handle._internal)
            return value
        if kind == "setter":
            _, attr, decl, attr_type, public = plan
            if self.enforce_encapsulation and not handle._internal and not public:
                raise EncapsulationError(
                    f"{obj.type_name}.set_{attr} is not public"
                )

            def setter(value: Any, *, _oid=oid, _attr=attr) -> None:
                self.set_attr(_oid, _attr, value)

            return setter
        _, op_name, decl, operation, public = plan

        def invoker(*args: Any, _oid=oid, _op=op_name, _internal=handle._internal) -> Any:
            return self.invoke(_oid, _op, args, internal=_internal)

        return invoker

    # ------------------------------------------------------------------
    # Elementary reads
    # ------------------------------------------------------------------

    def _read_attr(self, obj: StoredObject, attr: str, decl_type: str) -> Any:
        self.buffer.touch(obj.placement.page_id)
        if self._tracers:
            self._record_access(obj.oid, decl_type, attr)
        return obj.data[attr]

    def read_attr(self, oid: Oid, attr: str) -> Any:
        """Raw attribute read (OIDs are not wrapped into handles)."""
        obj = self.objects.get(oid)
        plan = self._plan(obj.type_name, attr)
        if plan[0] != "attr":
            raise UnknownAttributeError(f"{obj.type_name} has no attribute {attr}")
        return self._read_attr(obj, attr, plan[2])

    # ------------------------------------------------------------------
    # Elementary updates with schema-rewrite notification
    # ------------------------------------------------------------------

    def set_attr(self, oid: Oid, attr: str, value: Any) -> None:
        """The elementary ``t.set_A`` update operation."""
        if self._shard_locks is None:
            with self._update_lock:
                self._set_attr_impl(oid, attr, value)
            return
        with self._update_lock, self._epoch_scope():
            self._set_attr_impl(oid, attr, value)

    def _set_attr_impl(self, oid: Oid, attr: str, value: Any) -> None:
        obj = self.objects.get(oid)
        plan = self._plan(obj.type_name, attr)
        if plan[0] != "attr":
            raise UnknownAttributeError(f"{obj.type_name} has no attribute {attr}")
        _, _, decl_type, attr_type, _ = plan
        raw = unwrap(value)
        self.schema.check_value(attr_type, raw, type_of_oid=self.objects.type_of)
        if self._wal is not None and not self._wal_suppress:
            self._wal_log(
                {
                    "kind": "set",
                    "oid": oid.value,
                    "attr": attr,
                    "value": _wal_encode(raw),
                }
            )
        gmr = self._gmr
        exclude: frozenset[str] = frozenset()
        if gmr is not None and self.level.notifies and not self._suppress_depth:
            # Compensating actions fire *before* the update (Sec. 5.4).
            exclude = self._compensate_if_registered(
                obj, decl_type, writer_name(attr), (raw,)
            )
        old = obj.data.get(attr)
        obj.data[attr] = raw
        self.buffer.touch(obj.placement.page_id, write=True)
        index = self._attr_indexes.get((decl_type, attr))
        if index is not None:
            if old is not None:
                index.remove(old, oid)
            if raw is not None:
                index.insert(raw, oid)
        self._fire_listeners("set", oid, decl_type, attr, old, raw)
        self._notify_update(obj, decl_type, attr, exclude)

    def collection_insert(
        self, target: Handle | Oid, element: Any, *, position: int | None = None
    ) -> None:
        """The elementary ``insert`` update on a set/list object.

        ``position`` inserts at a specific index (used by transaction
        rollback to restore list order); the default appends.
        """
        if self._shard_locks is None:
            with self._update_lock:
                self._collection_insert_impl(target, element, position=position)
            return
        with self._update_lock, self._epoch_scope():
            self._collection_insert_impl(target, element, position=position)

    def _collection_insert_impl(
        self, target: Handle | Oid, element: Any, *, position: int | None
    ) -> None:
        oid = unwrap(target)
        obj = self.objects.get(oid)
        definition = self.schema.type(obj.type_name)
        if not definition.is_collection():
            # A tuple type may declare an operation named "insert".
            if self.schema.has_operation(obj.type_name, "insert"):
                self.invoke(oid, "insert", (element,))
                return
            raise NotSetStructuredError(f"{obj.type_name} is not set/list-structured")
        raw = unwrap(element)
        if definition.element_type is None:
            raise SchemaError(
                f"collection type {obj.type_name} declares no element type"
            )
        self.schema.check_value(
            definition.element_type, raw, type_of_oid=self.objects.type_of
        )
        if definition.is_set() and raw in obj.elements:
            return
        if self._wal is not None and not self._wal_suppress:
            record = {"kind": "insert", "oid": oid.value, "value": _wal_encode(raw)}
            if position is not None:
                record["pos"] = position
            self._wal_log(record)
        gmr = self._gmr
        exclude: frozenset[str] = frozenset()
        if gmr is not None and self.level.notifies and not self._suppress_depth:
            exclude = self._compensate_if_registered(
                obj, obj.type_name, "insert", (raw,)
            )
        if position is None:
            obj.elements.append(raw)
        else:
            obj.elements.insert(position, raw)
        self.buffer.touch(obj.placement.page_id, write=True)
        self._fire_listeners(
            "insert", oid, obj.type_name, ELEMENTS_ATTR, None, raw
        )
        self._notify_update(obj, obj.type_name, ELEMENTS_ATTR, exclude)

    def collection_remove(self, target: Handle | Oid, element: Any) -> None:
        """The elementary ``remove`` update on a set/list object."""
        if self._shard_locks is None:
            with self._update_lock:
                self._collection_remove_impl(target, element)
            return
        with self._update_lock, self._epoch_scope():
            self._collection_remove_impl(target, element)

    def _collection_remove_impl(
        self, target: Handle | Oid, element: Any
    ) -> None:
        oid = unwrap(target)
        obj = self.objects.get(oid)
        definition = self.schema.type(obj.type_name)
        if not definition.is_collection():
            if self.schema.has_operation(obj.type_name, "remove"):
                self.invoke(oid, "remove", (element,))
                return
            raise NotSetStructuredError(f"{obj.type_name} is not set/list-structured")
        raw = unwrap(element)
        if raw not in obj.elements:
            return
        if self._wal is not None and not self._wal_suppress:
            self._wal_log(
                {"kind": "remove", "oid": oid.value, "value": _wal_encode(raw)}
            )
        gmr = self._gmr
        exclude: frozenset[str] = frozenset()
        if gmr is not None and self.level.notifies and not self._suppress_depth:
            exclude = self._compensate_if_registered(
                obj, obj.type_name, "remove", (raw,)
            )
        removed_at = obj.elements.index(raw)
        obj.elements.remove(raw)
        self.buffer.touch(obj.placement.page_id, write=True)
        # ``new`` carries the removal index so transaction rollback can
        # restore list order exactly.
        self._fire_listeners(
            "remove", oid, obj.type_name, ELEMENTS_ATTR, raw, removed_at
        )
        self._notify_update(obj, obj.type_name, ELEMENTS_ATTR, exclude)

    def _compensate_if_registered(
        self,
        obj: StoredObject,
        decl_type: str,
        update_name: str,
        update_args: tuple,
    ) -> frozenset[str]:
        """Run compensating actions; returns the compensated function ids."""
        gmr = self._gmr
        if gmr is None:
            raise InternalError(
                "compensation requested without a GMR manager; update "
                "paths must only consult compensations once "
                "materialization is enabled"
            )
        if not gmr.has_compensation(decl_type, update_name):
            return frozenset()
        relevant = gmr.compensated_fct(decl_type, update_name) & obj.obj_dep_fct
        if not relevant:
            return frozenset()
        # Only fully handled fids are excluded from the post-update
        # invalidation wave; a fid whose delta patch was discarded falls
        # back to ordinary invalidation (never a stale row).
        return frozenset(
            gmr.compensate(obj.oid, update_args, decl_type, update_name, relevant)
        )

    def _notify_update(
        self,
        obj: StoredObject,
        decl_type: str,
        attr: str,
        exclude: frozenset[str],
    ) -> None:
        tracer = self.observe.tracer
        if not tracer.enabled:
            self._notify_update_impl(obj, decl_type, attr, exclude)
            return
        with tracer.span(
            "update", oid=str(obj.oid), type=decl_type, attr=attr
        ):
            self._notify_update_impl(obj, decl_type, attr, exclude)

    def _notify_update_impl(
        self,
        obj: StoredObject,
        decl_type: str,
        attr: str,
        exclude: frozenset[str],
    ) -> None:
        """The schema-rewrite notification branch (Figures 4 and 5)."""
        gmr = self._gmr
        level = self.level
        if gmr is None or not level.notifies:
            return
        if self._suppress_depth:
            # Inside a public operation of a strictly encapsulated type
            # (Sec. 5.3) or an operation whose effect was already handled
            # by a compensating action (Sec. 5.4): the enclosing operation
            # performs the single invalidation afterwards.
            return
        if level is InstrumentationLevel.NAIVE:
            # Figure 4: notify unconditionally; manager does the RRR lookup.
            gmr.invalidate(obj.oid, None, exclude=exclude, via="naive")
            return
        plan = gmr.update_plan(decl_type, attr)
        if plan is not None:
            # Precompiled path: one cached dict lookup replaces the
            # per-update SchemaDepFct set construction.
            schema_dep = plan.fids
        else:
            schema_dep = gmr.schema_dep_fct(decl_type, attr)
        if not schema_dep:
            return
        if level is InstrumentationLevel.SCHEMA_DEP:
            gmr.invalidate(
                obj.oid, schema_dep - exclude, exclude=exclude, via="schema_dep"
            )
            return
        # OBJ_DEP and INFO_HIDING (the latter for non-suppressed updates):
        if gmr.batch_conservative:
            # A create adaptation is pending in the open batch, so
            # ObjDepFct markings are not up to date — notify at
            # SchemaDepFct granularity; the flush-time RRR probe drops
            # functions the object has no entries for.
            relevant = schema_dep - exclude
            via = "batch_fallback"
        else:
            relevant = (obj.obj_dep_fct & schema_dep) - exclude
            via = "obj_dep"
        if relevant:
            gmr.invalidate(obj.oid, relevant, exclude=exclude, via=via)

    def _notify_create(self, obj: StoredObject) -> None:
        gmr = self._gmr
        if gmr is not None and self.level.notifies:
            gmr.new_object(obj.oid, obj.type_name)
        self._fire_listeners("create", obj.oid, obj.type_name, None, None, None)

    # ------------------------------------------------------------------
    # Update listeners (derived structures outside the GMR manager)
    # ------------------------------------------------------------------

    def register_update_listener(self, listener) -> None:
        """Register a callable invoked after every elementary update.

        Thread-safe via copy-on-write: (un)registration builds a *new*
        list under ``_listener_lock`` and swaps it in atomically, so a
        concurrent :meth:`_fire_listeners` iterates its own immutable
        snapshot.  Consequence (documented, not a bug): a listener
        unregistered while a dispatch is in flight may still receive
        that one event; a listener registered mid-dispatch sees only
        subsequent events.
        """
        with self._listener_lock:
            self._update_listeners = self._update_listeners + [listener]

    def unregister_update_listener(self, listener) -> None:
        with self._listener_lock:
            remaining = list(self._update_listeners)
            remaining.remove(listener)
            self._update_listeners = remaining

    def _fire_listeners(self, kind, oid, type_name, attr, old, new) -> None:
        # Dispatch runs outside any listener lock on purpose: listeners
        # may re-enter the object base (derived-structure maintenance)
        # or (un)register listeners.  The attribute read is one atomic
        # reference load and the list is never mutated in place
        # (copy-on-write above), so iterating the snapshot is safe even
        # while another thread re-registers.  In MT mode updates hold
        # the object base's update lock, so listeners observe updates
        # serialized exactly like the single-threaded dispatch.
        listeners = self._update_listeners
        if not listeners:
            return
        for listener in listeners:
            listener(kind, oid, type_name, attr, old, new)

    # ------------------------------------------------------------------
    # Collection reads
    # ------------------------------------------------------------------

    def _collection_obj(self, target: Handle | Oid) -> StoredObject:
        obj = self.objects.get(unwrap(target))
        if not self.schema.type(obj.type_name).is_collection():
            raise NotSetStructuredError(f"{obj.type_name} is not set/list-structured")
        return obj

    def collection_iter(self, target: Handle | Oid) -> Iterator[Any]:
        obj = self._collection_obj(target)
        self.buffer.touch(obj.placement.page_id)
        if self._tracers:
            self._record_access(obj.oid, obj.type_name, ELEMENTS_ATTR)
        internal = isinstance(target, Handle) and target._internal
        for element in list(obj.elements):
            if isinstance(element, Oid):
                yield Handle(self, element, internal=internal)
            else:
                yield element

    def collection_len(self, target: Handle | Oid) -> int:
        obj = self._collection_obj(target)
        self.buffer.touch(obj.placement.page_id)
        if self._tracers:
            self._record_access(obj.oid, obj.type_name, ELEMENTS_ATTR)
        return len(obj.elements)

    def collection_contains(self, target: Handle | Oid, element: Any) -> bool:
        obj = self._collection_obj(target)
        self.buffer.touch(obj.placement.page_id)
        if self._tracers:
            self._record_access(obj.oid, obj.type_name, ELEMENTS_ATTR)
        return unwrap(element) in obj.elements

    # ------------------------------------------------------------------
    # Operation dispatch
    # ------------------------------------------------------------------

    def invoke(
        self,
        oid: Oid,
        op_name: str,
        args: tuple,
        *,
        internal: bool = False,
    ) -> Any:
        """Invoke a declared operation on an object.

        Handles, in order: encapsulation enforcement, the materialized
        fast path (an invocation of a materialized function is mapped to
        a forward query, Sec. 3.2), compensating actions (before the
        update, Sec. 5.4), information-hiding suppression and the single
        post-operation invalidation (Sec. 5.3).
        """
        obj = self.objects.get(oid)
        plan = self._plan(obj.type_name, op_name)
        if plan[0] != "op":
            raise UnknownOperationError(f"{obj.type_name} has no operation {op_name}")
        _, _, decl_type, operation, public = plan
        if self.enforce_encapsulation and not internal and not public:
            raise EncapsulationError(f"{obj.type_name}.{op_name} is not public")

        raw_args = tuple(unwrap(argument) for argument in args)
        if len(raw_args) != len(operation.param_types):
            raise TypeCheckError(
                f"{decl_type}.{op_name} expects {len(operation.param_types)} "
                f"argument(s), got {len(raw_args)}"
            )
        for expected, raw in zip(operation.param_types, raw_args):
            self.schema.check_value(expected, raw, type_of_oid=self.objects.type_of)

        gmr = self._gmr
        # Materialized fast path: outside a materialization, invocation of
        # a materialized function becomes a forward query on its GMR.
        # Deliberately *not* under the update lock — the MT consistent
        # read path must stay free to proceed during a pool drain.
        if (
            gmr is not None
            and not self._materializing_depth
            and gmr.is_materialized_op(decl_type, op_name)
        ):
            return gmr.retrieve_forward_op(decl_type, op_name, (oid,) + raw_args)

        # The remainder may mutate the object base (compensation, the
        # body's elementary updates, the post-operation invalidation);
        # in MT mode it runs atomically under the update lock so one
        # operation's effects never interleave with another thread's.
        # Exception: a sharded drain's rematerialization (we are inside
        # a ``call_function``) must never block on — or deadlock with —
        # the global lock; the materialized bodies are side-effect-free
        # (the paper's standing assumption), and any conflict with a
        # concurrent update is caught by the write-epoch check before
        # the result is committed.
        if self._shard_locks is not None and self._materializing_depth:
            return self._invoke_body(
                obj, oid, op_name, decl_type, operation, raw_args
            )
        with self._update_lock:
            return self._invoke_body(
                obj, oid, op_name, decl_type, operation, raw_args
            )

    def _invoke_body(
        self,
        obj: StoredObject,
        oid: Oid,
        op_name: str,
        decl_type: str,
        operation: OperationDef,
        raw_args: tuple,
    ) -> Any:
        gmr = self._gmr
        # Compensating actions on declared operations run before the body.
        compensated: frozenset[str] = frozenset()
        if (
            gmr is not None
            and self.level.notifies
            and not self._suppress_depth
            and not self._materializing_depth
        ):
            compensated = self._compensate_if_registered(
                obj, decl_type, op_name, raw_args
            )

        strict = self._is_strict(obj.type_name)
        info_hiding = (
            self.level is InstrumentationLevel.INFO_HIDING
            and strict
            and gmr is not None
        )
        # Record the strictly-encapsulated receiver as one opaque unit
        # while tracing ("only this object, but none of its subobjects,
        # have to be marked", Sec. 5.3).
        opaque = strict and bool(self._tracers)
        post_invalidate = (
            (info_hiding or bool(compensated))
            and not self._suppress_depth
            and self.level.notifies
        )
        suppress = (info_hiding or bool(compensated)) and gmr is not None

        if opaque and not self._opaque_depth:
            self._record_object_only(oid)
        if opaque:
            self._opaque_depth += 1
        if suppress:
            self._suppress_depth += 1
        try:
            self_handle = Handle(self, oid, internal=True)
            wrapped = tuple(
                Handle(self, raw) if isinstance(raw, Oid) else raw
                for raw in raw_args
            )
            result = operation.body(self_handle, *wrapped)
        finally:
            if opaque:
                self._opaque_depth -= 1
            if suppress:
                self._suppress_depth -= 1

        if post_invalidate and gmr is not None:
            invalidates = self._invalidated_fct(obj.type_name, op_name)
            if gmr.batch_conservative:
                relevant = invalidates - compensated
            else:
                relevant = (obj.obj_dep_fct & invalidates) - compensated
            if relevant:
                gmr.invalidate(
                    oid, relevant, exclude=compensated, via="invalidated_fct"
                )
        return result

    def _invalidated_fct(self, type_name: str, op_name: str) -> frozenset[str]:
        """``InvalidatedFct(t.u)`` collected along the supertype chain."""
        result: set[str] = set()
        for definition in self.schema.supertype_chain(type_name):
            result.update(definition.invalidates.get(op_name, ()))
        return frozenset(result)

    def call_function(self, info: "FunctionInfo", args: tuple) -> Any:
        """Evaluate a registered function body directly (no GMR fast path).

        Used by the GMR manager during (re-)materialization: the paper's
        "modified versions" of the materialized functions are invoked,
        i.e. the real implementations run under tracing.
        """
        self._materializing_depth += 1
        try:
            result = self.invoke(args[0], info.op_name, args[1:], internal=True)
        finally:
            self._materializing_depth -= 1
        return unwrap(result)

    # ------------------------------------------------------------------
    # Attribute indexes (used by the query planner, e.g. on CuboidID)
    # ------------------------------------------------------------------

    def create_attr_index(self, type_name: str, attr: str) -> BPlusTree:
        """Create (and backfill) an index over ``type_name.attr``."""
        decl_type = self.schema.attribute_declaring_type(type_name, attr)
        key = (decl_type, attr)
        if key in self._attr_indexes:
            return self._attr_indexes[key]
        index = BPlusTree(
            self.page_store, self.buffer, segment=f"idx:{decl_type}.{attr}"
        )
        self._attr_indexes[key] = index
        for oid in self.objects.extension(decl_type):
            value = self.objects.get(oid).data.get(attr)
            if value is not None:
                index.insert(value, oid)
        return index

    def attr_index(self, type_name: str, attr: str) -> BPlusTree | None:
        try:
            decl_type = self.schema.attribute_declaring_type(type_name, attr)
        except UnknownAttributeError:
            return None
        return self._attr_indexes.get((decl_type, attr))

    def _index_new_object(self, obj: StoredObject) -> None:
        if not self._attr_indexes or obj.data is None:
            return
        for (decl_type, attr), index in self._attr_indexes.items():
            if attr in obj.data and self.schema.is_subtype(obj.type_name, decl_type):
                value = obj.data[attr]
                if value is not None:
                    index.insert(value, obj.oid)

    def _index_drop_object(self, obj: StoredObject) -> None:
        if not self._attr_indexes or obj.data is None:
            return
        for (decl_type, attr), index in self._attr_indexes.items():
            if attr in obj.data and self.schema.is_subtype(obj.type_name, decl_type):
                value = obj.data[attr]
                if value is not None:
                    index.remove(value, obj.oid)

    # ------------------------------------------------------------------
    # Queries (GOMql)
    # ------------------------------------------------------------------

    def query(self, text: str) -> Any:
        """Parse and execute a GOMql statement.

        ``retrieve`` queries return a list of result rows (or a scalar for
        aggregate queries); ``materialize`` statements create the GMR and
        return it.
        """
        from repro.gomql import run_statement

        return run_statement(self, text)

    def explain(self, text: str | None = None, params: dict | None = None):
        """Explain a GOMql query, or — called without arguments — the
        materialization state.

        With ``text``, explains (without executing) how the statement
        would be evaluated (GMR backward plan, attribute index, or
        extension scan).  Without arguments, returns the
        :class:`~repro.observe.explain.ExplainReport` over every GMR:
        per-row validity with the reason recorded on the last
        invalidation wave, per-function probe/rematerialization tallies,
        and per-strategy cost totals.
        """
        if text is None:
            return self.gmr_manager.explain()
        from repro.gomql import explain_statement

        return explain_statement(self, text, params)

    # ------------------------------------------------------------------
    # Cost reporting
    # ------------------------------------------------------------------

    def simulated_cost(self) -> float:
        return self.cost_model.cost(self.buffer.stats)

    def reset_costs(self) -> None:
        self.buffer.reset_stats()
