"""Access tracers.

During a (re-)materialization the GMR manager must "remember all accessed
objects" (Sec. 4.1) to build the Reverse Reference Relation, and the
static analysis of the Appendix needs an observed-access fallback.  A
tracer records, while active, every object whose state is read and every
``(declaring type, attribute)`` pair that is accessed.

Tracers form a stack on the :class:`~repro.gom.database.ObjectBase`;
reads notify every active tracer.  An *opaque* depth counter supports the
information-hiding rule that accesses inside a public operation of a
strictly encapsulated object are attributed to that object alone.
"""

from __future__ import annotations

from repro.gom.oid import Oid


class AccessTracer:
    """Records object and attribute accesses while active."""

    __slots__ = ("objects", "attributes")

    def __init__(self) -> None:
        #: OIDs of all objects whose state was read.
        self.objects: set[Oid] = set()
        #: ``(type name, attribute)`` pairs read, keyed by the *declaring*
        #: type so they line up with RelAttr entries.
        self.attributes: set[tuple[str, str]] = set()

    def record_object(self, oid: Oid) -> None:
        self.objects.add(oid)

    def record_attribute(self, type_name: str, attribute: str) -> None:
        self.attributes.add((type_name, attribute))
