"""Object identifiers.

GOM guarantees that "the OID of an object is guaranteed to remain
invariant throughout its lifetime" — OIDs are immutable, hashable values
handed out by a monotonically increasing generator, printed ``id⟨n⟩`` to
match the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True, order=True)
class Oid:
    """An immutable object identifier."""

    value: int

    def __repr__(self) -> str:
        return f"id{self.value}"


class OidGenerator:
    """Hands out fresh OIDs, never reusing a value."""

    def __init__(self, start: int = 1) -> None:
        self._next = start

    def next(self) -> Oid:
        oid = Oid(self._next)
        self._next += 1
        return oid
