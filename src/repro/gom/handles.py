"""Object handles: implicit referencing/dereferencing.

In GOM "objects are referenced via their object identifier; referencing
and dereferencing is implicit".  A :class:`Handle` is a lightweight proxy
pairing an :class:`~repro.gom.oid.Oid` with its object base; attribute
reads, the built-in ``set_A`` writers, set/list element operations and
declared operations are all reached with plain Python syntax, so function
bodies read exactly like the paper's GOM code::

    def volume(self):
        return self.length() * self.width() * self.height()

Handles compare and hash by OID.  A handle may be *internal* (obtained as
``self`` inside an operation body), which exempts it from the public
clause so operations can reach their own representation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.gom.oid import Oid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gom.database import ObjectBase

_RESERVED = frozenset(
    {"_db", "_oid", "_internal", "oid", "type_name", "insert", "remove", "contains"}
)


class Handle:
    """Proxy for one object in an :class:`ObjectBase`."""

    __slots__ = ("_db", "_oid", "_internal")

    def __init__(self, db: "ObjectBase", oid: Oid, *, internal: bool = False) -> None:
        object.__setattr__(self, "_db", db)
        object.__setattr__(self, "_oid", oid)
        object.__setattr__(self, "_internal", internal)

    # -- identity ---------------------------------------------------------------

    @property
    def oid(self) -> Oid:
        return self._oid

    @property
    def type_name(self) -> str:
        return self._db.type_of(self._oid)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Handle):
            return self._oid == other._oid
        if isinstance(other, Oid):
            return self._oid == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._oid)

    def __repr__(self) -> str:
        return f"<{self.type_name} {self._oid!r}>"

    # -- member access -----------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        # Only called for names not found on the class: attribute reads,
        # set_A writers and operation invocations.
        return self._db.handle_member(self, name)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(
            f"direct assignment to {name} is not allowed; "
            f"use the set_{name}(...) accessor"
        )

    # -- collection protocol --------------------------------------------------------

    def insert(self, element: Any) -> None:
        """Insert into a set/list-structured object (elementary update)."""
        self._db.collection_insert(self, element)

    def remove(self, element: Any) -> None:
        """Remove from a set/list-structured object (elementary update)."""
        self._db.collection_remove(self, element)

    def contains(self, element: Any) -> bool:
        return self._db.collection_contains(self, element)

    def __contains__(self, element: Any) -> bool:
        return self._db.collection_contains(self, element)

    def __iter__(self) -> Iterator[Any]:
        return self._db.collection_iter(self)

    def __len__(self) -> int:
        return self._db.collection_len(self)

    def elements(self) -> list[Any]:
        """Snapshot of a collection's elements (handles for references)."""
        return list(self._db.collection_iter(self))


def unwrap(value: Any) -> Any:
    """Convert a Handle to its OID; pass every other value through."""
    if isinstance(value, Handle):
        return value.oid
    return value
