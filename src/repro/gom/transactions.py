"""Transactions: atomic groups of updates with consistent rollback.

GOM applications group updates; an aborted group must leave the object
base — *including every derived structure* (GMR extensions, RRR,
ObjDepFct markings, ASRs, attribute indexes) — as if it never ran.  The
implementation records an undo log of inverse elementary updates and
replays it in reverse through the ordinary instrumented update paths, so
the schema-rewrite notification machinery maintains the materializations
during rollback exactly as it does during forward execution.  No special
cases inside the GMR manager are needed — a direct payoff of the paper's
design decision to funnel every state change through the rewritten
elementary operations.

Limitations (documented, enforced):

* ``delete`` is not allowed inside a transaction — an OID cannot be
  resurrected, so deletion is not undoable;
* objects *created* inside an aborted transaction are deleted again on
  rollback.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import ReproError
from repro.gom.oid import Oid

if TYPE_CHECKING:  # pragma: no cover
    from repro.gom.database import ObjectBase


class TransactionError(ReproError):
    """Illegal operation inside (or on) a transaction."""


class Transaction:
    """One (possibly nested) transaction scope."""

    def __init__(self, db: "ObjectBase") -> None:
        self._db = db
        self._undo: list[tuple] = []
        self.active = False
        self.rolled_back = False

    # -- logging (called from the update listener) ---------------------------------

    def record(self, kind: str, oid: Oid, attr: str | None, old: Any, new: Any) -> None:
        if kind == "set":
            self._undo.append(("set", oid, attr, old))
        elif kind == "insert":
            self._undo.append(("uninsert", oid, new))
        elif kind == "remove":
            self._undo.append(("reinsert", oid, old, new))
        elif kind == "create":
            self._undo.append(("uncreate", oid))

    # -- control -----------------------------------------------------------------------

    def rollback(self) -> None:
        db = self._db
        for entry in reversed(self._undo):
            action = entry[0]
            if action == "set":
                _, oid, attr, old = entry
                db.set_attr(oid, attr, old)
            elif action == "uninsert":
                _, oid, element = entry
                db.collection_remove(oid, element)
            elif action == "reinsert":
                _, oid, element, position = entry
                db.collection_insert(oid, element, position=position)
            elif action == "uncreate":
                (_, oid) = entry
                if db.objects.exists(oid):
                    db.delete(oid)
        self._undo.clear()
        self.rolled_back = True

    def commit_into(self, parent: "Transaction | None") -> None:
        """On nested commit, the undo log folds into the enclosing scope."""
        if parent is not None:
            parent._undo.extend(self._undo)
        self._undo.clear()

    @property
    def size(self) -> int:
        return len(self._undo)


class TransactionManager:
    """Stack of transaction scopes attached to one object base."""

    def __init__(self, db: "ObjectBase") -> None:
        self._db = db
        self._stack: list[Transaction] = []
        #: Suppresses undo-recording while inverse updates are replayed.
        #: A plain (unlocked) flag: rollback runs under the object base's
        #: update lock, and the listener that reads it fires from update
        #: paths holding the same lock — so the flag is only ever read by
        #: the thread that set it.  Single-threaded mode trivially
        #: satisfies the same invariant.
        self._rolling_back = False
        db.register_update_listener(self._on_update)

    @property
    def depth(self) -> int:
        return len(self._stack)

    @property
    def in_transaction(self) -> bool:
        return bool(self._stack)

    def _on_update(self, kind, oid, type_name, attr, old, new) -> None:
        if self._rolling_back or not self._stack:
            return
        if kind == "delete":
            # Should have been rejected up front; defensive double-check.
            raise TransactionError("delete inside a transaction")
        self._stack[-1].record(kind, oid, attr, old, new)

    def check_delete_allowed(self, oid: Oid) -> None:
        if self._stack and not self._rolling_back:
            raise TransactionError(
                f"cannot delete {oid!r} inside a transaction: object "
                f"deletion is not undoable (OIDs are never reused)"
            )

    def begin(self) -> Transaction:
        transaction = Transaction(self._db)
        transaction.active = True
        self._stack.append(transaction)
        self._db._wal_log({"kind": "txn_begin"})
        return transaction

    def commit(self, transaction: Transaction) -> None:
        self._expect_top(transaction)
        self._stack.pop()
        transaction.commit_into(self._stack[-1] if self._stack else None)
        transaction.active = False
        self._db._wal_log({"kind": "txn_commit"})

    def rollback(self, transaction: Transaction) -> None:
        self._expect_top(transaction)
        self._stack.pop()
        self._rolling_back = True
        try:
            transaction.rollback()
        finally:
            self._rolling_back = False
        transaction.active = False
        # The abort marker follows the logged inverse updates: a crash
        # mid-rollback leaves the scope unterminated on disk and recovery
        # discards the whole suffix — which is exactly the abort's intent.
        self._db._wal_log({"kind": "txn_abort"})

    def _expect_top(self, transaction: Transaction) -> None:
        if not self._stack or self._stack[-1] is not transaction:
            raise TransactionError(
                "transactions must be completed innermost-first"
            )


class TransactionScope:
    """``with db.transaction() as txn:`` — commit on success, roll back
    on exception (or explicit ``txn.abort()``)."""

    def __init__(self, manager: TransactionManager) -> None:
        self._manager = manager
        self._transaction: Transaction | None = None
        self._abort_requested = False

    def __enter__(self) -> "TransactionScope":
        self._transaction = self._manager.begin()
        return self

    def abort(self) -> None:
        """Request a rollback at scope exit."""
        self._abort_requested = True

    @property
    def update_count(self) -> int:
        if self._transaction is None:
            raise TransactionError("transaction scope has not been entered")
        return self._transaction.size

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._transaction is None:
            raise TransactionError("transaction scope has not been entered")
        if exc_type is not None or self._abort_requested:
            self._manager.rollback(self._transaction)
            return False  # propagate any exception
        self._manager.commit(self._transaction)
        return False
