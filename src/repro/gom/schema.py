"""The schema: a registry of type definitions with inheritance resolution.

GOM supports single inheritance coupled with subtyping and
substitutability under strong typing: a subtype instance is always
substitutable for a supertype instance, and every database component is
constrained to a declared type or a subtype thereof.  The schema answers
all subtype/membership questions and resolves inherited attributes and
operations.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.errors import (
    DuplicateTypeError,
    SchemaError,
    TypeCheckError,
    UnknownAttributeError,
    UnknownOperationError,
    UnknownTypeError,
)
from repro.gom.oid import Oid
from repro.gom.types import (
    ATOMIC_TYPES,
    AttributeDef,
    OperationDef,
    TypeDefinition,
    TypeKind,
    atomic_value_ok,
    is_atomic_type,
    writer_name,
)

#: Name of the implicit root supertype of all tuple types.
ANY = "ANY"


class Schema:
    """Registry of type definitions.

    Atomic types (``float``, ``int``, ...) and ``ANY`` are pre-registered.
    """

    def __init__(self) -> None:
        self._types: dict[str, TypeDefinition] = {}
        self._subtypes: dict[str, set[str]] = {}
        any_type = TypeDefinition(name=ANY, kind=TypeKind.TUPLE, supertype=None)
        any_type.public = set()
        self._types[ANY] = any_type
        self._subtypes[ANY] = set()
        for atomic_name in ATOMIC_TYPES:
            self._types[atomic_name] = TypeDefinition(
                name=atomic_name, kind=TypeKind.ATOMIC, supertype=None
            )

    # -- registration -----------------------------------------------------------

    def add_type(self, definition: TypeDefinition) -> TypeDefinition:
        name = definition.name
        if name in self._types:
            raise DuplicateTypeError(f"type {name} is already defined")
        supertype = definition.supertype
        if definition.kind is TypeKind.TUPLE:
            if supertype is None:
                definition.supertype = supertype = ANY
            if supertype not in self._types:
                raise UnknownTypeError(f"supertype {supertype} of {name} is unknown")
            super_def = self._types[supertype]
            if super_def.kind is not TypeKind.TUPLE:
                raise SchemaError(
                    f"{name}: supertype {supertype} is not tuple-structured"
                )
            for attribute in definition.attributes:
                if self._find_attr(supertype, attribute) is not None:
                    raise SchemaError(
                        f"{name}.{attribute} shadows an inherited attribute"
                    )
        elif definition.kind in (TypeKind.SET, TypeKind.LIST):
            if definition.element_type is None:
                raise SchemaError(f"collection type {name} needs an element type")
            definition.supertype = None
        self._types[name] = definition
        self._subtypes[name] = set()
        if definition.supertype:
            self._subtypes[definition.supertype].add(name)
        return definition

    def type(self, name: str) -> TypeDefinition:
        try:
            return self._types[name]
        except KeyError:
            raise UnknownTypeError(f"unknown type {name}") from None

    def has_type(self, name: str) -> bool:
        return name in self._types

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def type_names(self) -> Iterator[str]:
        return iter(self._types)

    # -- inheritance -----------------------------------------------------------

    def supertype_chain(self, name: str) -> Iterator[TypeDefinition]:
        """Yield the type and its supertypes up to (and including) ANY."""
        current: str | None = name
        while current is not None:
            definition = self.type(current)
            yield definition
            current = definition.supertype

    def is_subtype(self, sub: str, sup: str) -> bool:
        """True iff ``sub`` equals ``sup`` or inherits from it."""
        if sub == sup:
            return True
        return any(definition.name == sup for definition in self.supertype_chain(sub))

    def subtypes_transitive(self, name: str) -> set[str]:
        """All proper subtypes of ``name`` (transitively)."""
        result: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for child in self._subtypes.get(current, ()):
                if child not in result:
                    result.add(child)
                    frontier.append(child)
        return result

    # -- member resolution --------------------------------------------------------

    def _find_attr(self, type_name: str, attribute: str) -> tuple[str, AttributeDef] | None:
        for definition in self.supertype_chain(type_name):
            found = definition.attributes.get(attribute)
            if found is not None:
                return definition.name, found
        return None

    def all_attributes(self, type_name: str) -> dict[str, AttributeDef]:
        """All attributes, inherited ones first."""
        chain = list(self.supertype_chain(type_name))
        result: dict[str, AttributeDef] = {}
        for definition in reversed(chain):
            result.update(definition.attributes)
        return result

    def attribute(self, type_name: str, attribute: str) -> AttributeDef:
        found = self._find_attr(type_name, attribute)
        if found is None:
            raise UnknownAttributeError(f"{type_name} has no attribute {attribute}")
        return found[1]

    def attribute_declaring_type(self, type_name: str, attribute: str) -> str:
        """The type in the supertype chain that declares ``attribute``."""
        found = self._find_attr(type_name, attribute)
        if found is None:
            raise UnknownAttributeError(f"{type_name} has no attribute {attribute}")
        return found[0]

    def resolve_operation(
        self, type_name: str, operation: str
    ) -> tuple[str, OperationDef]:
        """Find ``operation`` on ``type_name`` or a supertype."""
        for definition in self.supertype_chain(type_name):
            found = definition.operations.get(operation)
            if found is not None:
                return definition.name, found
        raise UnknownOperationError(f"{type_name} has no operation {operation}")

    def has_operation(self, type_name: str, operation: str) -> bool:
        try:
            self.resolve_operation(type_name, operation)
            return True
        except UnknownOperationError:
            return False

    def is_public(self, type_name: str, member: str) -> bool:
        """Whether ``member`` (operation or accessor name) is public.

        Each type in the chain may contribute public members; a type with
        ``public is None`` exposes everything it declares.
        """
        for definition in self.supertype_chain(type_name):
            declares = (
                member in definition.operations
                or definition.has_attribute(member)
                or (
                    member.startswith("set_")
                    and definition.has_attribute(member[len("set_") :])
                )
            )
            if definition.public is None:
                if declares or definition.kind in (TypeKind.SET, TypeKind.LIST):
                    return True
                continue
            if member in definition.public:
                return True
        return False

    # -- type checking --------------------------------------------------------------

    def check_value(
        self,
        expected_type: str,
        value: Any,
        *,
        type_of_oid,
    ) -> None:
        """Raise :class:`TypeCheckError` unless ``value`` conforms.

        ``type_of_oid`` maps an :class:`Oid` to its dynamic type name (the
        object manager supplies it); subtype instances are substitutable.
        ``None`` is accepted for any complex type (an unset reference).
        """
        if is_atomic_type(expected_type):
            if expected_type == "void":
                if value is not None:
                    raise TypeCheckError("void cannot hold a value")
                return
            if not atomic_value_ok(expected_type, value):
                raise TypeCheckError(
                    f"value {value!r} does not conform to atomic type {expected_type}"
                )
            return
        if value is None:
            return
        if not isinstance(value, Oid):
            raise TypeCheckError(
                f"expected a reference to {expected_type}, got {value!r}"
            )
        actual = type_of_oid(value)
        if not self.is_subtype(actual, expected_type):
            raise TypeCheckError(
                f"object {value!r} of type {actual} is not substitutable "
                f"for {expected_type}"
            )
