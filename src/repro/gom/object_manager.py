"""The object manager: OID → object mapping and type extensions.

Maintains the extension ``ext(t)`` of every type — the set of instances
of ``t`` — which the ``materialize`` statement binds range variables to
(Def. 3.4 defines completeness of a GMR against the cross product of the
argument-type extensions).  Because subtype instances are substitutable,
``extension`` unions subtype extents by default.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any

from repro.errors import DeletedObjectError, NoSuchObjectError
from repro.gom.objects import StoredObject
from repro.gom.oid import Oid, OidGenerator
from repro.gom.schema import Schema
from repro.gom.types import TypeKind
from repro.storage.pages import PageStore


class ObjectManager:
    """Creates, stores, retrieves and deletes objects."""

    def __init__(self, schema: Schema, page_store: PageStore) -> None:
        self._schema = schema
        self._pages = page_store
        self._oids = OidGenerator()
        self._objects: dict[Oid, StoredObject] = {}
        self._extents: dict[str, list[Oid]] = {}

    def __len__(self) -> int:
        return len(self._objects)

    def peek_next_oid(self) -> Oid:
        """The OID the next ``create`` will receive (without consuming it).

        Write-ahead logging needs it: the ``create`` record is written
        *before* the object exists, yet must name the OID deterministically.
        """
        return Oid(self._oids._next)

    def advance_oid_floor(self, next_oid: int) -> None:
        """Raise the allocator so no future OID falls below ``next_oid``.

        Persistence load uses it: a dumped base may have burned OIDs on
        since-deleted objects, and a reload must not re-issue them — a
        replayed log (or a parallel live process) names those OIDs.
        """
        if next_oid > self._oids._next:
            self._oids._next = next_oid

    # -- lifecycle -------------------------------------------------------------

    def create(
        self,
        type_name: str,
        *,
        data: dict[str, Any] | None = None,
        elements: list[Any] | None = None,
    ) -> StoredObject:
        definition = self._schema.type(type_name)
        if definition.kind is TypeKind.ATOMIC:
            raise NoSuchObjectError(f"cannot instantiate atomic type {type_name}")
        oid = self._oids.next()
        obj = StoredObject(oid, type_name, data=data, elements=elements)
        obj.placement = self._pages.place(type_name, obj.size_estimate())
        self._objects[oid] = obj
        self._extents.setdefault(type_name, []).append(oid)
        return obj

    def restore(
        self,
        oid: Oid,
        type_name: str,
        *,
        data: dict[str, Any] | None = None,
        elements: list[Any] | None = None,
    ) -> StoredObject:
        """Re-create an object under its original OID (persistence load).

        The OID generator is advanced past the restored value so future
        creations can never collide.
        """
        if self.exists(oid):
            raise NoSuchObjectError(f"{oid!r} is already live")
        obj = StoredObject(oid, type_name, data=data, elements=elements)
        obj.placement = self._pages.place(type_name, obj.size_estimate())
        self._objects[oid] = obj
        self._extents.setdefault(type_name, []).append(oid)
        if oid.value >= self._oids._next:
            self._oids._next = oid.value + 1
        return obj

    def get(self, oid: Oid) -> StoredObject:
        obj = self._objects.get(oid)
        if obj is None:
            raise NoSuchObjectError(f"{oid!r} does not denote a live object")
        if obj.deleted:
            raise DeletedObjectError(f"{oid!r} has been deleted")
        return obj

    def exists(self, oid: Oid) -> bool:
        obj = self._objects.get(oid)
        return obj is not None and not obj.deleted

    def exists_all(self, oids: "Iterable[Oid]") -> bool:
        """Whether every oid denotes a live object (one liveness sweep
        for a whole argument tuple — the batched pipeline's blind-row
        check)."""
        return all(self.exists(oid) for oid in oids)

    def type_of(self, oid: Oid) -> str:
        return self.get(oid).type_name

    def delete(self, oid: Oid) -> StoredObject:
        obj = self.get(oid)
        obj.deleted = True
        extent = self._extents.get(obj.type_name)
        if extent is not None:
            try:
                extent.remove(oid)
            except ValueError:
                pass
        if obj.placement is not None:
            self._pages.remove(obj.placement)
        del self._objects[oid]
        return obj

    # -- extensions -------------------------------------------------------------

    def own_extent(self, type_name: str) -> list[Oid]:
        """Instances whose dynamic type is exactly ``type_name``."""
        return list(self._extents.get(type_name, ()))

    def extension(self, type_name: str) -> list[Oid]:
        """``ext(t)``: all instances of ``t`` including subtype instances."""
        result = list(self._extents.get(type_name, ()))
        for subtype in self._schema.subtypes_transitive(type_name):
            result.extend(self._extents.get(subtype, ()))
        return result

    def extension_size(self, type_name: str) -> int:
        total = len(self._extents.get(type_name, ()))
        for subtype in self._schema.subtypes_transitive(type_name):
            total += len(self._extents.get(subtype, ()))
        return total

    def iter_objects(self) -> Iterator[StoredObject]:
        return iter(self._objects.values())

    def oids(self) -> Iterable[Oid]:
        return self._objects.keys()
