"""Schema-rewrite instrumentation levels.

The paper refines the update-notification mechanism in stages; each stage
corresponds to one "modified version" of the elementary update operations
(Figures 4 and 5, Sec. 5.3).  The :class:`ObjectBase` selects a level and
its update paths branch accordingly:

``NONE``
    No notification at all — the *WithoutGMR* program version.  GMRs (if
    any were created) silently go stale; benchmarks use this level only
    for the unsupported baseline.

``NAIVE``
    Figure 4: *every* elementary update invokes
    ``GMR_Manager.invalidate(self)`` / ``forget_object(self)``,
    unconditionally.  Each invocation performs an RRR lookup.

``SCHEMA_DEP``
    Sec. 5.1: only update operations with a non-empty
    ``SchemaDepFct(t.set_A)`` notify the manager, passing the statically
    determined set of potentially affected functions along.

``OBJ_DEP``
    Figure 5 / Sec. 5.2: additionally intersect with the updated object's
    ``ObjDepFct`` marking, so the manager is invoked only when an
    invalidation will actually take place.  This is the paper's standard
    *WithGMR* configuration.

``INFO_HIDING``
    Sec. 5.3: for strictly encapsulated types, elementary updates inside
    a public operation are silent; the public operation itself performs a
    single invalidation based on its ``InvalidatedFct`` set.  Types that
    are not strictly encapsulated fall back to ``OBJ_DEP`` behaviour.

Every level composes with the batched-maintenance pipeline
(:mod:`repro.core.batch`): inside ``with db.batch():`` the notification
*decision* is still made per the level above, but the resulting
``invalidate``/``new_object``/``forget_object`` calls are deferred into
the manager's queue and coalesced.  One caveat at ``OBJ_DEP`` and
``INFO_HIDING``: while a ``create`` adaptation is pending in the open
batch, the ``ObjDepFct`` filter is skipped (markings of objects created
inside the batch only materialize at flush), falling back to
``SCHEMA_DEP`` granularity until the next flush — see
:attr:`repro.core.manager.GMRManager.batch_conservative`.

Write-ahead logging (:mod:`repro.storage.wal`) sits *below* every level:
the elementary update record is appended before the update applies, no
matter which level (if any) ends up notifying the GMR manager.  Recovery
replays those records through these same instrumented paths at the
restored base's own level, so the maintenance performed during replay is
the level's ordinary per-update behaviour.  At ``INFO_HIDING`` (and for
compensated operations) that replay is deliberately more conservative
than the live run — the enclosing public operation no longer exists at
replay time, so suppressed elementary updates notify individually — which
can invalidate entries the live run kept valid, but never the reverse:
the recovered base stays consistent (Def. 3.2) and rematerializes those
entries on first access.
"""

from __future__ import annotations

from enum import IntEnum


class InstrumentationLevel(IntEnum):
    """How aggressively elementary updates are rewritten to notify."""

    NONE = 0
    NAIVE = 1
    SCHEMA_DEP = 2
    OBJ_DEP = 3
    INFO_HIDING = 4

    @property
    def notifies(self) -> bool:
        return self is not InstrumentationLevel.NONE
