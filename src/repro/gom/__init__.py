"""GOM: the object model substrate (Sec. 2 of the paper).

Implements the features of the GOM data model that function
materialization depends on:

* tuple-, set- and list-structured object types with single inheritance
  under strong typing (``ANY`` is the implicit root supertype);
* object identity — objects are referenced via immutable OIDs, and
  referencing/dereferencing is implicit through :class:`Handle`;
* encapsulation — for every attribute ``A`` the built-in operations ``A``
  (read) and ``set_A`` (write) exist, and only members listed in a type's
  *public clause* may be invoked from outside;
* type-associated operations with declared signatures, implemented as
  plain Python callables over handles (so bodies read like the paper's
  GOM code: ``self.V1.dist(self.V2)``);
* the *schema rewrite* update-notification mechanism (Sec. 4.3): the
  elementary update operations ``set_A`` / ``insert`` / ``remove`` /
  ``create`` / ``delete`` notify the GMR manager according to the
  selected instrumentation level (Figures 4 and 5 of the paper).
"""

from repro.gom.oid import Oid
from repro.gom.types import TypeKind, AttributeDef, OperationDef, TypeDefinition
from repro.gom.schema import Schema, ANY
from repro.gom.handles import Handle
from repro.gom.instrumentation import InstrumentationLevel
from repro.gom.database import ObjectBase

__all__ = [
    "Oid",
    "TypeKind",
    "AttributeDef",
    "OperationDef",
    "TypeDefinition",
    "Schema",
    "ANY",
    "Handle",
    "InstrumentationLevel",
    "ObjectBase",
]
