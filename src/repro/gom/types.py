"""Type definitions: tuple, set and list structured types with operations.

A :class:`TypeDefinition` corresponds to one ``type ... is ... end type``
frame of the paper (see the ``Vertex`` / ``Material`` / ``Cuboid``
definitions in Sec. 2).  It carries:

* the structural description (typed attributes for tuple types, the
  element type for set/list types);
* the *public clause* — names of operations (including the built-in
  attribute accessors ``A`` / ``set_A``) that clients may invoke;
* declared operations with their signatures and Python bodies;
* the strict-encapsulation flag and per-operation ``InvalidatedFct``
  sets used by the information-hiding optimisation (Sec. 5.3).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.errors import SchemaError

#: Names of the built-in atomic types and the Python classes that are
#: acceptable for each.  ``decimal`` and ``char`` follow the paper's type
#: frames; both map onto ordinary Python values.
ATOMIC_TYPES: dict[str, tuple[type, ...]] = {
    "float": (float, int),
    "int": (int,),
    "string": (str,),
    "bool": (bool,),
    "char": (str,),
    "decimal": (float, int),
    "void": (type(None),),
}

#: Pseudo-attribute used to model dependence on a set/list object's
#: membership (iterating a set reads this; insert/remove write it).
ELEMENTS_ATTR = "__elements__"


class TypeKind(Enum):
    """Structural description kinds of GOM types."""

    ATOMIC = "atomic"
    TUPLE = "tuple"
    SET = "set"
    LIST = "list"


@dataclass(frozen=True, slots=True)
class AttributeDef:
    """A typed attribute of a tuple-structured type."""

    name: str
    type_name: str


@dataclass
class OperationDef:
    """A type-associated operation.

    ``param_types`` excludes the implicit receiver; ``body`` is a Python
    callable invoked as ``body(self_handle, *argument_handles)``.
    """

    name: str
    param_types: list[str]
    result_type: str
    body: Callable[..., Any]
    doc: str = ""


def reader_name(attribute: str) -> str:
    """The built-in read accessor for an attribute is named like it."""
    return attribute


def writer_name(attribute: str) -> str:
    """The built-in write accessor: ``set_A`` for attribute ``A``."""
    return f"set_{attribute}"


@dataclass
class TypeDefinition:
    """One GOM type frame."""

    name: str
    kind: TypeKind
    supertype: str | None = "ANY"
    attributes: dict[str, AttributeDef] = field(default_factory=dict)
    element_type: str | None = None
    operations: dict[str, OperationDef] = field(default_factory=dict)
    #: Members invocable from outside; ``None`` means "everything public"
    #: (a convenience for tests and interactive use — the paper's examples
    #: always list the public clause explicitly, and the domain schemas do
    #: the same).
    public: set[str] | None = None
    strict_encapsulation: bool = False
    #: ``InvalidatedFct`` specifications (Def. 5.3): operation name → set
    #: of materialized-function ids the operation may affect.  Supplied by
    #: the database programmer; consulted only under information hiding.
    invalidates: dict[str, set[str]] = field(default_factory=dict)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def tuple_type(
        cls,
        name: str,
        attributes: Mapping[str, str],
        *,
        supertype: str = "ANY",
        public: Iterable[str] | None = None,
    ) -> "TypeDefinition":
        return cls(
            name=name,
            kind=TypeKind.TUPLE,
            supertype=supertype,
            attributes={
                attr: AttributeDef(attr, type_name)
                for attr, type_name in attributes.items()
            },
            public=None if public is None else set(public),
        )

    @classmethod
    def set_type(
        cls,
        name: str,
        element_type: str,
        *,
        public: Iterable[str] | None = None,
    ) -> "TypeDefinition":
        return cls(
            name=name,
            kind=TypeKind.SET,
            element_type=element_type,
            public=None if public is None else set(public),
        )

    @classmethod
    def list_type(
        cls,
        name: str,
        element_type: str,
        *,
        public: Iterable[str] | None = None,
    ) -> "TypeDefinition":
        return cls(
            name=name,
            kind=TypeKind.LIST,
            element_type=element_type,
            public=None if public is None else set(public),
        )

    # -- membership ------------------------------------------------------------

    def is_tuple(self) -> bool:
        return self.kind is TypeKind.TUPLE

    def is_set(self) -> bool:
        return self.kind is TypeKind.SET

    def is_list(self) -> bool:
        return self.kind is TypeKind.LIST

    def is_collection(self) -> bool:
        return self.kind in (TypeKind.SET, TypeKind.LIST)

    def has_attribute(self, attribute: str) -> bool:
        return attribute in self.attributes

    def define_operation(
        self,
        name: str,
        param_types: Iterable[str],
        result_type: str,
        body: Callable[..., Any],
        *,
        doc: str = "",
    ) -> OperationDef:
        if self.kind is TypeKind.ATOMIC:
            raise SchemaError(f"cannot define operations on atomic type {self.name}")
        if name in self.attributes:
            raise SchemaError(
                f"{self.name}.{name} clashes with the built-in attribute accessor"
            )
        operation = OperationDef(
            name=name,
            param_types=list(param_types),
            result_type=result_type,
            body=body,
            doc=doc or (body.__doc__ or ""),
        )
        self.operations[name] = operation
        return operation

    def make_public(self, *members: str) -> None:
        if self.public is None:
            self.public = set()
        self.public.update(members)

    def declare_invalidates(self, operation: str, functions: Iterable[str]) -> None:
        """Record an ``InvalidatedFct`` specification for ``operation``."""
        self.invalidates.setdefault(operation, set()).update(functions)


def is_atomic_type(type_name: str) -> bool:
    return type_name in ATOMIC_TYPES


def atomic_value_ok(type_name: str, value: Any) -> bool:
    """Check a Python value against an atomic GOM type."""
    expected = ATOMIC_TYPES.get(type_name)
    if expected is None:
        return False
    if type_name != "bool" and isinstance(value, bool):
        # bool is a subclass of int in Python; keep GOM's types distinct.
        return False
    if type_name == "char":
        return isinstance(value, str) and len(value) == 1
    return isinstance(value, expected)
