"""The company administration schema of Sec. 7.2.

Matrix organization of a company: a ``Company`` holds ``Departments``
(each with a set of ``Employees``) and ``Projects`` (each with the set of
programmers involved).  Each ``Employee`` has a unique number, a salary
and a job history; a ``Job`` records the part of a project delegated to
the employee (lines of code written plus two Boolean status flags).

The two materialized functions of the benchmark:

* ``Employee.ranking`` — the average of the assessment values of all
  jobs in the employee's history;
* ``Company.matrix`` — the department × project matrix: the set of
  ``MatrixLine(dep, proj, emps)`` records with a non-empty employee set.

``increase_matrix`` is the compensating action of Figure 15: inserting a
new project extends the stored matrix with that project's lines instead
of recomputing the whole matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.util.rng import DeterministicRng

if TYPE_CHECKING:  # pragma: no cover
    from repro.gom.database import ObjectBase
    from repro.gom.handles import Handle


@dataclass(frozen=True)
class MatrixLine:
    """One line of the department × project matrix.

    ``emps`` holds the employees of ``dep`` working in ``proj``; lines
    with an empty employee set are not part of the matrix.
    """

    dep: object
    proj: object
    emps: tuple

    def __repr__(self) -> str:  # keep benchmark output compact
        return f"MatrixLine({self.dep!r}, {self.proj!r}, {len(self.emps)} emps)"


# ---------------------------------------------------------------------------
# Operation bodies
# ---------------------------------------------------------------------------


def job_assessment(self):
    """Assessment of one job: productivity plus status bonuses."""
    score = self.LinesOfCode / 1000.0
    if self.OnTime:
        score = score + 1.0
    if self.WithinBudget:
        score = score + 1.0
    return score


def employee_ranking(self):
    """Average assessment over the employee's job history (0 if empty)."""
    total = 0.0
    count = 0
    for job in self.JobHistory:
        total = total + job.assessment()
        count = count + 1
    if count == 0:
        return 0.0
    return total / count


def company_matrix(self):
    """The department × project matrix (a set of MatrixLine records).

    Returned as a frozenset: the matrix "is defined as a set of tuples of
    the type MatrixLine", so equality is order-insensitive — which also
    makes compensating actions composable with full recomputation.
    """
    lines = []
    for dep in self.Deps:
        for proj in self.Projs:
            emps = []
            for employee in dep.Emps:
                if proj.Programmers.contains(employee):
                    emps.append(employee)
            if len(emps) > 0:
                lines.append(MatrixLine(dep, proj, tuple(emps)))
    return frozenset(lines)


def company_add_project(self, project):
    """Register a new project with the company (public update)."""
    self.Projs.insert(project)


def company_drop_project(self, project):
    """Remove a project from the company (public update)."""
    self.Projs.remove(project)


# ---------------------------------------------------------------------------
# Compensating action for Figure 15
# ---------------------------------------------------------------------------


def increase_matrix(company, new_project, old_matrix):
    """Compensate ``Company.add_project`` for ``matrix``: append the new
    project's lines to the stored matrix (Def. 5.4)."""
    lines = set(old_matrix)
    for dep in company.Deps:
        emps = tuple(
            employee
            for employee in dep.Emps
            if new_project.Programmers.contains(employee)
        )
        if emps:
            lines.add(MatrixLine(dep, new_project, emps))
    return frozenset(lines)


def matrix_add_project_delta(old_matrix, update):
    """Delta handler for ``Company.add_project`` over ``matrix``."""
    return increase_matrix(update.receiver, update.args[0], old_matrix)


def matrix_drop_project_delta(old_matrix, update):
    """Delta handler for ``Company.drop_project``: drop the project's
    lines from the stored matrix."""
    project = update.args[0]
    return frozenset(line for line in old_matrix if line.proj != project)


def define_company_deltas(db: "ObjectBase") -> None:
    """Declare delta maintenance for ``Company.matrix`` (if materialized).

    Safe to call repeatedly; skipped while the function has no GMR.
    """
    from repro.errors import CompensationError

    try:
        db.define_delta(
            ("Company", "matrix"),
            on={
                ("Company", "add_project"): matrix_add_project_delta,
                ("Company", "drop_project"): matrix_drop_project_delta,
            },
            name="matrix",
        )
    except CompensationError:
        pass  # not materialized (yet)


# ---------------------------------------------------------------------------
# Schema construction
# ---------------------------------------------------------------------------


def build_company_schema(db: "ObjectBase") -> None:
    """Define the company types (reference graph of Figure 12)."""
    db.define_tuple_type("Person", {"Name": "string"})
    db.define_set_type("Employees", "Employee")
    db.define_set_type("Jobs", "Job")
    db.define_set_type("Projects", "Project")
    db.define_set_type("Departments", "Department")
    db.define_tuple_type(
        "Employee",
        {"EmpNo": "int", "Salary": "float", "JobHistory": "Jobs"},
        supertype="Person",
    )
    db.define_tuple_type(
        "Project",
        {
            "PName": "string",
            "Status": "float",   # −1000 (delay/loss) .. 1000 (profitable)
            "Size": "int",       # lines of code
            "Programmers": "Employees",
        },
    )
    db.define_tuple_type(
        "Job",
        {
            "Proj": "Project",
            "LinesOfCode": "int",
            "OnTime": "bool",
            "WithinBudget": "bool",
        },
    )
    db.define_tuple_type(
        "Department",
        {"DName": "string", "DepNo": "int", "Emps": "Employees"},
    )
    db.define_tuple_type(
        "Company",
        {"CName": "string", "Deps": "Departments", "Projs": "Projects"},
    )

    db.define_operation("Job", "assessment", [], "float", job_assessment)
    db.define_operation("Employee", "ranking", [], "float", employee_ranking)
    db.define_operation("Company", "matrix", [], "MatrixLines", company_matrix)
    db.define_operation(
        "Company", "add_project", ["Project"], "void", company_add_project
    )
    db.define_operation(
        "Company", "drop_project", ["Project"], "void", company_drop_project
    )
    # InvalidatedFct specification for the update operations (consulted
    # whenever add_project carries a compensating action, and under
    # information hiding).
    db.declare_invalidates("Company", "add_project", ["Company.matrix"])
    db.declare_invalidates("Company", "drop_project", ["Company.matrix"])


# ---------------------------------------------------------------------------
# Population
# ---------------------------------------------------------------------------


@dataclass
class CompanyFixture:
    """Handles created by :func:`populate_company`."""

    company: "Handle"
    departments: list
    employees: list
    projects: list
    jobs: list


def populate_company(
    db: "ObjectBase",
    rng: DeterministicRng,
    *,
    departments: int = 20,
    employees_per_department: int = 100,
    projects: int = 1000,
    jobs_per_employee: int = 10,
) -> CompanyFixture:
    """Create one company with the paper's population parameters.

    Every employee holds ``jobs_per_employee`` jobs on randomly chosen
    projects; each project's ``Programmers`` set is kept consistent with
    the job references.
    """
    project_handles = []
    for index in range(projects):
        programmers = db.new_collection("Employees")
        project = db.new(
            "Project",
            PName=f"P{index}",
            Status=rng.uniform(-1000.0, 1000.0),
            Size=rng.randint(1_000, 100_000),
            Programmers=programmers,
        )
        project_handles.append(project)

    department_handles = []
    employee_handles = []
    job_handles = []
    emp_no = 0
    for dep_index in range(departments):
        emps = db.new_collection("Employees")
        department = db.new(
            "Department",
            DName=f"D{dep_index}",
            DepNo=dep_index,
            Emps=emps,
        )
        department_handles.append(department)
        for _ in range(employees_per_department):
            emp_no += 1
            history = db.new_collection("Jobs")
            employee = db.new(
                "Employee",
                Name=f"E{emp_no}",
                EmpNo=emp_no,
                Salary=rng.uniform(30_000.0, 120_000.0),
                JobHistory=history,
            )
            employee_handles.append(employee)
            emps.insert(employee)
            for _ in range(jobs_per_employee):
                project = rng.choice(project_handles)
                job = db.new(
                    "Job",
                    Proj=project,
                    LinesOfCode=rng.randint(100, 20_000),
                    OnTime=rng.random() < 0.6,
                    WithinBudget=rng.random() < 0.6,
                )
                job_handles.append(job)
                history.insert(job)
                project.Programmers.insert(employee)

    deps_set = db.new_collection("Departments", department_handles)
    projs_set = db.new_collection("Projects", project_handles)
    company = db.new("Company", CName="ACME", Deps=deps_set, Projs=projs_set)
    return CompanyFixture(
        company=company,
        departments=department_handles,
        employees=employee_handles,
        projects=project_handles,
        jobs=job_handles,
    )


def add_random_project(
    db: "ObjectBase",
    rng: DeterministicRng,
    company: "Handle",
    candidates: list,
    *,
    programmers: int = 5,
    index: int = 0,
) -> "Handle":
    """The benchmark's ``N`` update: create and register a new project."""
    staff = rng.sample(candidates, min(programmers, len(candidates)))
    programmers_set = db.new_collection("Employees", staff)
    project = db.new(
        "Project",
        PName=f"NP{index}",
        Status=rng.uniform(-1000.0, 1000.0),
        Size=rng.randint(1_000, 100_000),
        Programmers=programmers_set,
    )
    company.add_project(project)
    return project
