"""The paper's two benchmark schemas.

* :mod:`repro.domains.geometry` — the computer-geometry application:
  ``Vertex`` / ``Material`` / ``Cuboid`` / ``Robot`` plus the set types
  ``Workpieces`` and ``Valuables`` (Secs. 2–6, benchmark Sec. 7.1);
* :mod:`repro.domains.company` — the personnel/project administration:
  ``Company`` / ``Department`` / ``Project`` / ``Employee`` / ``Job`` and
  the ``ranking`` / ``matrix`` functions (benchmark Sec. 7.2).
"""

from repro.domains.geometry import build_geometry_schema, create_cuboid
from repro.domains.company import build_company_schema, populate_company

__all__ = [
    "build_geometry_schema",
    "create_cuboid",
    "build_company_schema",
    "populate_company",
]
