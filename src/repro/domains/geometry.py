"""The computer-geometry schema of the paper (Figures 1 and 2).

Defines ``Vertex``, ``Material``, ``Robot``, ``Cuboid`` and the set types
``Workpieces`` (cuboids used in manufacturing; functions ``total_volume``
and ``total_weight``) and ``Valuables`` (cuboids interesting because of
their value; function ``total_value``).

The operation bodies are written in the analyzable Python subset, so the
static analysis of the Appendix extracts exactly the paper's Sec. 5.1
example::

    RelAttr(volume) = {Cuboid.V1, Cuboid.V2, Cuboid.V4, Cuboid.V5,
                       Vertex.X, Vertex.Y, Vertex.Z}

``build_geometry_schema(db, strict_cuboids=True)`` produces the Sec. 5.3
variant: ``Cuboid`` is strictly encapsulated, its vertex accessors leave
the public clause, and the ``InvalidatedFct`` sets record that *scale* is
the only geometric transformation affecting a materialized volume while
*rotate* and *translate* leave it invariant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.gom.database import ObjectBase
    from repro.gom.handles import Handle


# ---------------------------------------------------------------------------
# Operation bodies (paper Figure 1, written over handles)
# ---------------------------------------------------------------------------


def vertex_dist(self, other):
    """Euclidean distance between two vertices."""
    dx = self.X - other.X
    dy = self.Y - other.Y
    dz = self.Z - other.Z
    return (dx * dx + dy * dy + dz * dz) ** 0.5


def vertex_translate(self, t):
    """Move this vertex by the components of ``t``."""
    self.set_X(self.X + t.X)
    self.set_Y(self.Y + t.Y)
    self.set_Z(self.Z + t.Z)


def vertex_scale(self, s):
    """Scale this vertex componentwise by ``s`` (about the origin)."""
    self.set_X(self.X * s.X)
    self.set_Y(self.Y * s.Y)
    self.set_Z(self.Z * s.Z)


def vertex_rotate(self, angle, axis):
    """Rotate about the origin around the given axis ('x', 'y' or 'z').

    All three coordinates are written (the unchanged one with its old
    value) — this matches the paper's account that one ``rotate`` of a
    cuboid triggers twelve ``set_X``/``set_Y``/``set_Z`` invocations on
    the vertices relevant to a materialized volume.
    """
    cos_a = math.cos(angle)
    sin_a = math.sin(angle)
    x, y, z = self.X, self.Y, self.Z
    if axis == "x":
        self.set_X(x)
        self.set_Y(y * cos_a - z * sin_a)
        self.set_Z(y * sin_a + z * cos_a)
    elif axis == "y":
        self.set_X(x * cos_a + z * sin_a)
        self.set_Y(y)
        self.set_Z(-x * sin_a + z * cos_a)
    else:
        self.set_X(x * cos_a - y * sin_a)
        self.set_Y(x * sin_a + y * cos_a)
        self.set_Z(z)


def cuboid_length(self):
    """V1.dist(V2) — delegate the computation to Vertex V1."""
    return self.V1.dist(self.V2)


def cuboid_width(self):
    """V1.dist(V4)."""
    return self.V1.dist(self.V4)


def cuboid_height(self):
    """V1.dist(V5)."""
    return self.V1.dist(self.V5)


def cuboid_volume(self):
    """length * width * height."""
    return self.length() * self.width() * self.height()


def cuboid_weight(self):
    """volume * Mat.SpecWeight."""
    return self.volume() * self.Mat.SpecWeight


def cuboid_translate(self, t):
    """Delegate translate to the eight boundary vertices."""
    self.V1.translate(t)
    self.V2.translate(t)
    self.V3.translate(t)
    self.V4.translate(t)
    self.V5.translate(t)
    self.V6.translate(t)
    self.V7.translate(t)
    self.V8.translate(t)


def cuboid_scale(self, s):
    """Delegate scale to the eight boundary vertices."""
    self.V1.scale(s)
    self.V2.scale(s)
    self.V3.scale(s)
    self.V4.scale(s)
    self.V5.scale(s)
    self.V6.scale(s)
    self.V7.scale(s)
    self.V8.scale(s)


def cuboid_rotate(self, axis, angle):
    """Delegate rotate to the eight boundary vertices (volume-invariant)."""
    self.V1.rotate(angle, axis)
    self.V2.rotate(angle, axis)
    self.V3.rotate(angle, axis)
    self.V4.rotate(angle, axis)
    self.V5.rotate(angle, axis)
    self.V6.rotate(angle, axis)
    self.V7.rotate(angle, axis)
    self.V8.rotate(angle, axis)


def cuboid_distance(self, robot):
    """Distance from the cuboid's center to the robot's position."""
    cx = (self.V1.X + self.V7.X) / 2.0
    cy = (self.V1.Y + self.V7.Y) / 2.0
    cz = (self.V1.Z + self.V7.Z) / 2.0
    dx = cx - robot.Pos.X
    dy = cy - robot.Pos.Y
    dz = cz - robot.Pos.Z
    return (dx * dx + dy * dy + dz * dz) ** 0.5


def cuboid_pairwise_distance(self, other):
    """Center-to-center distance between two cuboids (Sec. 6 example)."""
    cx = (self.V1.X + self.V7.X) / 2.0
    cy = (self.V1.Y + self.V7.Y) / 2.0
    cz = (self.V1.Z + self.V7.Z) / 2.0
    ox = (other.V1.X + other.V7.X) / 2.0
    oy = (other.V1.Y + other.V7.Y) / 2.0
    oz = (other.V1.Z + other.V7.Z) / 2.0
    dx = cx - ox
    dy = cy - oy
    dz = cz - oz
    return (dx * dx + dy * dy + dz * dz) ** 0.5


def workpieces_total_volume(self):
    """Sum of the volumes of all member cuboids."""
    total = 0.0
    for cuboid in self:
        total = total + cuboid.volume()
    return total


def workpieces_total_weight(self):
    """Sum of the weights of all member cuboids."""
    total = 0.0
    for cuboid in self:
        total = total + cuboid.weight()
    return total


def valuables_total_value(self):
    """Sum of the Value attributes of all member cuboids."""
    total = 0.0
    for cuboid in self:
        total = total + cuboid.Value
    return total


# ---------------------------------------------------------------------------
# Compensating actions (Sec. 5.4)
# ---------------------------------------------------------------------------


def increase_total(workpieces, new_cuboid, old_total):
    """Compensate ``Workpieces.insert`` for ``total_volume`` (paper ex.)."""
    return old_total + new_cuboid.volume()


def decrease_total(workpieces, removed_cuboid, old_total):
    """Compensate ``Workpieces.remove`` for ``total_volume``."""
    return old_total - removed_cuboid.volume()


def define_geometry_deltas(db: "ObjectBase") -> None:
    """Declare delta maintenance for the domain's aggregate functions.

    Every sum-shaped aggregate that is currently materialized becomes
    self-maintainable under ``maintenance="delta"`` (an O(delta) patch
    per member insert/remove instead of an invalidation wave).  Safe to
    call repeatedly; functions without a GMR are skipped.
    """
    from repro.core.delta import sum_of
    from repro.errors import CompensationError

    for target, metric in (
        (("Workpieces", "total_volume"), lambda cuboid: cuboid.volume()),
        (("Workpieces", "total_weight"), lambda cuboid: cuboid.weight()),
        (("Valuables", "total_value"), lambda cuboid: cuboid.Value),
    ):
        try:
            db.define_delta(target, aggregate=sum_of(metric, name=target[1]))
        except CompensationError:
            continue  # not materialized (yet)


# ---------------------------------------------------------------------------
# Schema construction
# ---------------------------------------------------------------------------

_VERTEX_PUBLIC = [
    "X", "set_X", "Y", "set_Y", "Z", "set_Z",
    "translate", "scale", "rotate", "dist",
]

_MATERIAL_PUBLIC = ["Name", "set_Name", "SpecWeight", "set_SpecWeight"]

_CUBOID_PUBLIC_OPEN = [
    "length", "width", "height", "volume", "weight",
    "rotate", "scale", "translate", "distance", "distance_to",
    "V1", "set_V1", "V2", "set_V2", "V3", "set_V3", "V4", "set_V4",
    "V5", "set_V5", "V6", "set_V6", "V7", "set_V7", "V8", "set_V8",
    "Value", "set_Value", "Mat", "set_Mat", "CuboidID", "set_CuboidID",
]

#: Sec. 5.3: "public rotate, scale, translate, volume, weight ..." — the
#: boundary vertices disappear from the interface.
_CUBOID_PUBLIC_STRICT = [
    "length", "width", "height", "volume", "weight",
    "rotate", "scale", "translate", "distance", "distance_to",
    "Value", "set_Value", "Mat", "CuboidID",
]


def build_geometry_schema(db: "ObjectBase", *, strict_cuboids: bool = False) -> None:
    """Define the geometry types and operations on ``db``.

    ``strict_cuboids=True`` builds the information-hiding variant of
    Sec. 5.3: ``Cuboid`` becomes strictly encapsulated and every public
    update operation carries its ``InvalidatedFct`` specification.
    """
    db.define_tuple_type(
        "Vertex",
        {"X": "float", "Y": "float", "Z": "float"},
        public=_VERTEX_PUBLIC,
    )
    db.define_tuple_type(
        "Material",
        {"Name": "string", "SpecWeight": "float"},
        public=_MATERIAL_PUBLIC,
    )
    db.define_tuple_type(
        "Robot",
        {"Name": "string", "Pos": "Vertex"},
        public=["Name", "set_Name", "Pos", "set_Pos"],
    )
    db.define_tuple_type(
        "Cuboid",
        {
            "V1": "Vertex", "V2": "Vertex", "V3": "Vertex", "V4": "Vertex",
            "V5": "Vertex", "V6": "Vertex", "V7": "Vertex", "V8": "Vertex",
            "Mat": "Material", "Value": "decimal", "CuboidID": "int",
        },
        public=_CUBOID_PUBLIC_STRICT if strict_cuboids else _CUBOID_PUBLIC_OPEN,
    )
    db.define_set_type("Workpieces", "Cuboid")
    db.define_set_type("Valuables", "Cuboid")

    db.define_operation("Vertex", "dist", ["Vertex"], "float", vertex_dist)
    db.define_operation("Vertex", "translate", ["Vertex"], "void", vertex_translate)
    db.define_operation("Vertex", "scale", ["Vertex"], "void", vertex_scale)
    db.define_operation("Vertex", "rotate", ["float", "char"], "void", vertex_rotate)

    db.define_operation("Cuboid", "length", [], "float", cuboid_length)
    db.define_operation("Cuboid", "width", [], "float", cuboid_width)
    db.define_operation("Cuboid", "height", [], "float", cuboid_height)
    db.define_operation("Cuboid", "volume", [], "float", cuboid_volume)
    db.define_operation("Cuboid", "weight", [], "float", cuboid_weight)
    db.define_operation("Cuboid", "translate", ["Vertex"], "void", cuboid_translate)
    db.define_operation("Cuboid", "scale", ["Vertex"], "void", cuboid_scale)
    db.define_operation("Cuboid", "rotate", ["char", "float"], "void", cuboid_rotate)
    db.define_operation("Cuboid", "distance", ["Robot"], "float", cuboid_distance)
    db.define_operation(
        "Cuboid", "distance_to", ["Cuboid"], "float", cuboid_pairwise_distance
    )

    db.define_operation(
        "Workpieces", "total_volume", [], "float", workpieces_total_volume
    )
    db.define_operation(
        "Workpieces", "total_weight", [], "float", workpieces_total_weight
    )
    db.define_operation(
        "Valuables", "total_value", [], "float", valuables_total_value
    )

    if strict_cuboids:
        db.set_strict_encapsulation("Cuboid")
        # InvalidatedFct specifications (Def. 5.3), supplied by the data
        # type implementor: scale is the only geometric transformation
        # that can invalidate a precomputed volume/weight; all three move
        # the cuboid relative to robots and other cuboids.
        geometry_fcts = [
            "Cuboid.volume",
            "Cuboid.weight",
            "Workpieces.total_volume",
            "Workpieces.total_weight",
        ]
        position_fcts = ["Cuboid.distance", "Cuboid.distance_to"]
        db.declare_invalidates("Cuboid", "scale", geometry_fcts + position_fcts)
        db.declare_invalidates("Cuboid", "translate", position_fcts)
        db.declare_invalidates("Cuboid", "rotate", position_fcts)


# ---------------------------------------------------------------------------
# Data construction helpers
# ---------------------------------------------------------------------------


def create_vertex(db: "ObjectBase", x: float, y: float, z: float) -> "Handle":
    return db.new("Vertex", X=float(x), Y=float(y), Z=float(z))


def create_material(db: "ObjectBase", name: str, spec_weight: float) -> "Handle":
    return db.new("Material", Name=name, SpecWeight=float(spec_weight))


def create_cuboid(
    db: "ObjectBase",
    *,
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
    dims: tuple[float, float, float] = (1.0, 1.0, 1.0),
    material: "Handle",
    value: float = 0.0,
    cuboid_id: int = 0,
) -> "Handle":
    """Create a cuboid with its eight boundary vertices.

    Vertex layout matches the paper's function definitions: ``length``
    runs V1→V2 (x), ``width`` V1→V4 (y), ``height`` V1→V5 (z); V7 is the
    corner opposite V1.
    """
    ox, oy, oz = origin
    dx, dy, dz = dims
    v1 = create_vertex(db, ox, oy, oz)
    v2 = create_vertex(db, ox + dx, oy, oz)
    v3 = create_vertex(db, ox + dx, oy + dy, oz)
    v4 = create_vertex(db, ox, oy + dy, oz)
    v5 = create_vertex(db, ox, oy, oz + dz)
    v6 = create_vertex(db, ox + dx, oy, oz + dz)
    v7 = create_vertex(db, ox + dx, oy + dy, oz + dz)
    v8 = create_vertex(db, ox, oy + dy, oz + dz)
    return db.new(
        "Cuboid",
        V1=v1, V2=v2, V3=v3, V4=v4, V5=v5, V6=v6, V7=v7, V8=v8,
        Mat=material,
        Value=float(value),
        CuboidID=int(cuboid_id),
    )


def create_robot(
    db: "ObjectBase", name: str, position: tuple[float, float, float]
) -> "Handle":
    pos = create_vertex(db, *position)
    return db.new("Robot", Name=name, Pos=pos)


@dataclass
class GeometryFixture:
    """Handles of the Figure 2 example database."""

    gold: "Handle"
    iron: "Handle"
    cuboids: list
    workpieces: "Handle"
    valuables: "Handle"


def build_figure2_database(db: "ObjectBase") -> GeometryFixture:
    """The example extension of Figure 2: three cuboids, two materials,
    one Workpieces and one Valuables set."""
    gold = create_material(db, "Gold", 19.0)
    iron = create_material(db, "Iron", 7.86)
    # Dimensions chosen so volume/weight match the paper's GMR table:
    # id1: 300.0 / 2358.0 (iron), id2: 200.0 / 1572.0 (iron),
    # id3: 100.0 / 1900.0 (gold).
    c1 = create_cuboid(
        db, dims=(10.0, 6.0, 5.0), material=iron, value=39.99, cuboid_id=1
    )
    c2 = create_cuboid(
        db, dims=(10.0, 5.0, 4.0), material=iron, value=19.95, cuboid_id=2
    )
    c3 = create_cuboid(
        db, dims=(5.0, 5.0, 4.0), material=gold, value=89.90, cuboid_id=3
    )
    workpieces = db.new_collection("Workpieces", [c1, c2])
    valuables = db.new_collection("Valuables", [c3])
    return GeometryFixture(
        gold=gold,
        iron=iron,
        cuboids=[c1, c2, c3],
        workpieces=workpieces,
        valuables=valuables,
    )
