"""Observability: structured tracing, metrics, and EXPLAIN reports.

Everything user-facing lives behind two objects:

* :class:`MaterializationConfig` — the unified keyword-only
  configuration surface accepted by ``ObjectBase(config=...)``, whose
  :class:`ObserveConfig` corner controls this package;
* ``db.observe`` — the per-base :class:`Observability` facade owning
  the :class:`Tracer` and :class:`MetricsRegistry`.

``db.explain()`` / ``gmr.explain()`` return :class:`ExplainReport`.
See ``docs/OBSERVABILITY.md`` for the span taxonomy and field
reference.
"""

from repro.observe.config import (
    MaterializationConfig,
    Observability,
    ObserveConfig,
)
from repro.observe.explain import (
    ExplainReport,
    ExplainRow,
    FidExplain,
    WaveExplain,
    build_explain,
)
from repro.observe.metrics import (
    NULL_METRIC,
    PROBE_FANOUT_BUCKETS,
    QUEUE_DEPTH_BUCKETS,
    REMAT_LATENCY_BUCKETS,
    WAVE_WIDTH_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ViewMetric,
    install_stats_views,
)
from repro.observe.trace import (
    CallbackSink,
    JsonlSink,
    RingBufferSink,
    Span,
    Trace,
    TraceEvent,
    Tracer,
)

__all__ = [
    "CallbackSink",
    "Counter",
    "ExplainReport",
    "ExplainRow",
    "FidExplain",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MaterializationConfig",
    "MetricsRegistry",
    "NULL_METRIC",
    "Observability",
    "ObserveConfig",
    "PROBE_FANOUT_BUCKETS",
    "QUEUE_DEPTH_BUCKETS",
    "REMAT_LATENCY_BUCKETS",
    "RingBufferSink",
    "Span",
    "Trace",
    "TraceEvent",
    "Tracer",
    "ViewMetric",
    "WAVE_WIDTH_BUCKETS",
    "WaveExplain",
    "build_explain",
    "install_stats_views",
]
