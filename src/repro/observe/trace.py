"""Structured tracing: typed span/event records with pluggable sinks.

The paper's evaluation (Secs. 4–7, Figs. 7–15) is an accounting of
maintenance steps — updates, RRR probes, invalidation waves,
rematerializations, compensations.  This module records that causal
chain as it happens: every instrumented site emits a :class:`TraceEvent`
(a point event, or the start/end pair of a span), spans nest via an
explicit parent id, and registered sinks receive each record as it is
emitted.

The hot-path contract is *zero overhead when disabled*: every call site
in the manager/database guards on ``tracer.enabled`` (a plain attribute
read) before building any event, and the tracer's own methods bail out
first thing, so an untraced run pays one attribute check per site and
nothing else.

Sinks:

* :class:`RingBufferSink` — the last N events in memory (the default
  when tracing is enabled without an explicit sink);
* :class:`JsonlSink` — one JSON object per line, with size-based
  rotation (``file``, ``file.1`` … ``file.<max_files>``);
* :class:`CallbackSink` — hand each event to a callable (test hooks,
  bridges into external collectors).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass
class TraceEvent:
    """One emitted trace record.

    ``kind`` is ``"event"`` for point events, ``"span_start"`` /
    ``"span_end"`` for the two edges of a span.  ``span`` is the id of
    the span the record belongs to (its own id for span edges, the
    enclosing span's for point events; 0 = top level), ``parent`` the
    enclosing span's id for span starts.
    """

    seq: int
    ts: float
    kind: str
    name: str
    span: int = 0
    parent: int = 0
    fields: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        record: dict[str, Any] = {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "name": self.name,
            "span": self.span,
            "parent": self.parent,
        }
        if self.fields:
            record["fields"] = self.fields
        return record


class Span:
    """A handle for one open span (returned by :meth:`Tracer.begin`)."""

    __slots__ = ("name", "id", "parent", "started")

    def __init__(self, name: str, id: int, parent: int, started: float) -> None:
        self.name = name
        self.id = id
        self.parent = parent
        self.started = started

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.id}, parent={self.parent})"


#: Returned by ``begin()`` while tracing is disabled, so call sites that
#: do not guard (cold paths) still compose.
_NULL_SPAN = Span("<disabled>", 0, 0, 0.0)


class RingBufferSink:
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._events: list[TraceEvent] = []
        #: Total events ever emitted into this sink (dropped included).
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self.emitted += 1
        self._events.append(event)
        if len(self._events) > self.capacity:
            # Amortized: shed half the buffer at once instead of one
            # list.pop(0) per event.
            del self._events[: len(self._events) - self.capacity]

    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def clear(self) -> None:
        self._events.clear()


class JsonlSink:
    """Append events as JSON lines, rotating at ``max_bytes``.

    Rotation shifts ``path`` → ``path.1`` → … → ``path.<max_files>``;
    the oldest file is dropped.  ``max_bytes=None`` never rotates.
    """

    def __init__(
        self,
        path: str,
        *,
        max_bytes: int | None = None,
        max_files: int = 3,
    ) -> None:
        if max_files < 1:
            raise ValueError("max_files must be positive")
        self.path = path
        self.max_bytes = max_bytes
        self.max_files = max_files
        self.rotations = 0
        self._file = open(path, "a", encoding="utf-8")
        self._size = self._file.tell()

    def emit(self, event: TraceEvent) -> None:
        line = json.dumps(event.as_dict(), separators=(",", ":")) + "\n"
        if (
            self.max_bytes is not None
            and self._size > 0
            and self._size + len(line) > self.max_bytes
        ):
            self._rotate()
        self._file.write(line)
        self._size += len(line)

    def _rotate(self) -> None:
        self._file.close()
        oldest = f"{self.path}.{self.max_files}"
        if os.path.exists(oldest):
            os.unlink(oldest)
        for index in range(self.max_files - 1, 0, -1):
            source = f"{self.path}.{index}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._file = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self.rotations += 1

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._file.close()


class CallbackSink:
    """Hand every event to ``fn(event)``."""

    def __init__(self, fn: Callable[[TraceEvent], Any]) -> None:
        self.fn = fn

    def emit(self, event: TraceEvent) -> None:
        self.fn(event)


class Tracer:
    """The span/event emitter one :class:`~repro.gom.database.ObjectBase`
    owns (via its :class:`~repro.observe.config.Observability` facade).

    ``enabled`` is a plain attribute: instrumented call sites read it
    before constructing any record, which is the whole disabled-mode
    cost.  Spans nest through an internal stack — ``begin()`` inside an
    open span records that span as its parent, point events carry the
    innermost open span's id.

    Thread safety: the span stack is *thread-local* (each thread nests
    its own spans — a worker-pool rematerialization span never becomes
    the parent of a foreground query's events), while the ``seq`` /
    span-id counters and sink emission are serialized by an internal
    *reentrant* lock so interleaved emitters still produce unique,
    monotone sequence numbers and sinks never see torn writes — and a
    sink that itself emits a trace event recurses instead of
    self-deadlocking (sinks should still avoid re-entering the tracer;
    a slow sink serializes all tracing threads).  The lock is only
    ever taken when tracing is enabled, preserving the zero-overhead
    contract.  Set ``thread_ids=True`` (via
    ``ObserveConfig(thread_ids=True)``) to stamp every event with the
    emitting thread's id.
    """

    def __init__(
        self,
        *,
        enabled: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        #: When True, every event's ``fields`` carries ``thread``
        #: (the emitting thread's ident) — wired from
        #: :class:`~repro.observe.config.ObserveConfig`.
        self.thread_ids = False
        self._sinks: list[Any] = []
        self._seq = 0
        self._next_span = 0
        # Reentrant: a sink emitting from inside ``sink.emit`` (e.g. a
        # metrics bridge that traces itself) must recurse, not deadlock.
        self._lock = threading.RLock()
        self._local = threading.local()

    @property
    def _stack(self) -> list[Span]:
        """The calling thread's open-span stack (thread-local)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- sinks -----------------------------------------------------------------

    @property
    def sinks(self) -> list:
        return list(self._sinks)

    def add_sink(self, sink: Any) -> Any:
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Any) -> None:
        self._sinks.remove(sink)

    # -- emission --------------------------------------------------------------

    def _emit(self, kind: str, name: str, span: int, parent: int, fields: dict) -> None:
        if self.thread_ids:
            fields = {**fields, "thread": threading.get_ident()}
        with self._lock:
            self._seq += 1
            event = TraceEvent(
                seq=self._seq,
                ts=self.clock(),
                kind=kind,
                name=name,
                span=span,
                parent=parent,
                fields=fields,
            )
            for sink in self._sinks:
                sink.emit(event)

    def event(self, name: str, **fields: Any) -> None:
        """Emit a point event under the innermost open span."""
        if not self.enabled:
            return
        current = self._stack[-1].id if self._stack else 0
        self._emit("event", name, current, current, fields)

    def begin(self, name: str, **fields: Any) -> Span:
        """Open a span; returns the handle :meth:`end` closes."""
        if not self.enabled:
            return _NULL_SPAN
        stack = self._stack
        parent = stack[-1].id if stack else 0
        with self._lock:
            self._next_span += 1
            span_id = self._next_span
        span = Span(name, span_id, parent, self.clock())
        stack.append(span)
        self._emit("span_start", name, span.id, parent, fields)
        return span

    def end(self, span: Span, **fields: Any) -> None:
        """Close ``span`` (and any spans left open inside it)."""
        if span is _NULL_SPAN or not self.enabled:
            return
        # Robust unwinding: an exception may have skipped inner end()s.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        fields = dict(fields)
        fields["duration"] = self.clock() - span.started
        self._emit("span_end", span.name, span.id, span.parent, fields)

    def span(self, name: str, **fields: Any):
        """``with tracer.span("name"):`` — begin/end as a context."""
        return _SpanContext(self, name, fields)

    # -- lifecycle -------------------------------------------------------------

    def reset(self, marker: str | None = None, **fields: Any) -> None:
        """Reset the monotonic counters (seq, span ids, open stack).

        Used by recovery: the restored process starts a fresh trace
        timeline, and ``marker`` (e.g. ``"recovery"``) is emitted as the
        first event of the new timeline so consumers can see the seam.

        Not safe to call concurrently with in-flight emitters: callers
        (recovery, test fixtures) invoke it only while the object base
        is quiesced — i.e. after ``db.quiesce()`` with no other threads
        tracing.  The counters themselves are reset under the internal
        lock so a stale reader at worst sees the seam, never a torn
        counter.
        """
        with self._lock:
            self._seq = 0
            self._next_span = 0
            self._local = threading.local()
        if marker is not None and self.enabled:
            self._emit("event", marker, 0, 0, fields)


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_fields", "_span")

    def __init__(self, tracer: Tracer, name: str, fields: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._fields = fields
        self._span = None

    def __enter__(self) -> Span:
        self._span = self._tracer.begin(self._name, **self._fields)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._span is not None
        if exc_type is None:
            self._tracer.end(self._span)
        else:
            self._tracer.end(self._span, error=exc_type.__name__)


#: Public alias — the name the top-level API re-exports.
Trace = Tracer
