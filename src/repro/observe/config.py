"""The unified configuration surface: ``MaterializationConfig``.

Before this module the knobs of the maintenance machinery were scattered
— instrumentation level on ``ObjectBase(level=...)``, strategy per
``materialize(...)`` call, the fault pipeline on
``manager.fault_policy``, batching implicit in ``db.batch()`` scopes,
and no observability settings at all.  :class:`MaterializationConfig`
collects them into one keyword-only dataclass accepted by
``ObjectBase(config=...)``; :class:`ObserveConfig` is its observability
corner (tracing on/off, sinks, metrics on/off).

The legacy spellings still work for one release behind shims
(``ObjectBase(level=...)``, the ``manager.fault_policy`` /
``manager.batching`` setters) — see the migration table in
``docs/API.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.guard import FaultPolicy
from repro.core.strategies import Strategy
from repro.gom.instrumentation import InstrumentationLevel
from repro.observe.metrics import MetricsRegistry
from repro.observe.trace import (
    CallbackSink,
    JsonlSink,
    RingBufferSink,
    TraceEvent,
    Tracer,
)


@dataclass(kw_only=True)
class ObserveConfig:
    """Observability settings of one object base."""

    #: Emit structured trace spans/events.  Off by default — tracing is
    #: zero-overhead when disabled (call sites guard on this flag).
    trace: bool = False
    #: Maintain the metrics registry.  On by default; ``False`` makes
    #: every registry factory return the shared no-op metric and skips
    #: all per-fid accounting (the pre-observability baseline path).
    metrics: bool = True
    #: Capacity of the default in-memory ring sink.  ``None`` with
    #: ``trace=True`` still creates one (of 1024) unless another sink is
    #: configured, so enabling tracing always captures something.
    ring_buffer: int | None = None
    #: Write events as JSON lines to this path.
    jsonl_path: str | None = None
    #: Rotate the JSONL file after this many bytes (``None`` = never).
    jsonl_max_bytes: int | None = None
    #: Keep this many rotated JSONL files.
    jsonl_max_files: int = 3
    #: Hand every event to this callable (a :class:`CallbackSink`).
    callback: Callable[[TraceEvent], Any] | None = None
    #: Stamp every trace event with the emitting thread's id
    #: (``fields["thread"]``) — useful with ``workers > 0`` to separate
    #: pool-drain spans from foreground ones.  Off by default so
    #: single-threaded traces stay byte-identical to earlier releases.
    thread_ids: bool = False


@dataclass(kw_only=True)
class MaterializationConfig:
    """Every knob of the materialization machinery, in one place.

    Accepted by :class:`~repro.gom.database.ObjectBase` (``config=``);
    ``materialize(...)`` calls without an explicit ``strategy`` fall
    back to :attr:`strategy`.
    """

    #: Schema-rewrite notification granularity (Figures 4/5, Sec. 5.3).
    level: InstrumentationLevel = InstrumentationLevel.OBJ_DEP
    #: Default strategy for ``materialize()`` calls that do not name one.
    strategy: Strategy = Strategy.IMMEDIATE
    #: Whether ``db.batch()`` scopes defer maintenance notifications
    #: into the coalescing queue.  ``False`` turns batch scopes into
    #: pass-throughs (every notification processes eagerly).
    batching: bool = True
    #: Force batched notifications to SchemaDepFct granularity even
    #: when no create adaptation is pending (the always-conservative
    #: variant; normally conservatism is inferred per batch).
    batch_conservative: bool = False
    #: Use precompiled per-update invalidation plans (cached
    #: SchemaDepFct → FidPlan records, one dict lookup per elementary
    #: update).  ``False`` restores the per-update dependency-index
    #: scan — the pre-plan baseline kept for the ablation benchmark and
    #: for differential testing of the plan compiler.  Flipping the
    #: flag on a live base takes effect after
    #: ``db.gmr_manager.invalidate_plans()``.
    invalidation_plans: bool = True
    #: The fault-tolerance pipeline's knobs (guard, retry, breaker).
    fault_policy: FaultPolicy = field(default_factory=FaultPolicy)
    #: Observability settings (tracing, metrics, sinks).
    observe: ObserveConfig = field(default_factory=ObserveConfig)
    #: Background revalidation workers (Sec. 4.1's decoupled
    #: low-priority rematerialization).  ``0`` (the default) keeps the
    #: object base single-threaded with today's synchronous code paths
    #: bit-for-bit; ``N > 0`` starts a
    #: :class:`~repro.concurrency.pool.RevalidationWorkerPool` of N
    #: daemon threads that drains the DEFERRED scheduler off-thread,
    #: and arms the striped GMR-entry lock layer plus the object base's
    #: update lock so concurrent readers/writers are safe.  See
    #: ``docs/CONCURRENCY.md``.
    workers: int = 0
    #: Hash partitions of the materialization engine.  ``1`` (the
    #: default) keeps the single-shard engine bit-for-bit: one update
    #: lock, one scheduler, one WAL file — no new objects are created.
    #: ``N > 1`` partitions the GMR/RRR maintenance state by
    #: ``shard_of(args)`` (:mod:`repro.concurrency.sharding`): each
    #: shard owns an update lock, a :class:`RevalidationScheduler`
    #: instance and a WAL segment file, and worker-pool drains take only
    #: the owning shard's lock — so writers on different shards no
    #: longer serialize behind one global drain.  Cross-shard
    #: invalidation waves still fan out through the ordinary
    #: batch/coalescing pipeline.  Sharding arms the same
    #: multi-threading machinery as ``workers > 0`` (entry locks, MT
    #: read path).  See the sharding section of ``docs/CONCURRENCY.md``.
    shards: int = 1
    #: Maintenance engine for updates touching materialized results:
    #: ``"recompute"`` is pure invalidate-then-recompute (compensating
    #: actions and delta declarations stay registered but inert),
    #: ``"compensate"`` (the default) runs Sec. 5.4's hand-registered
    #: compensating actions exactly as before, and ``"delta"`` enables
    #: the generalized incremental maintenance engine
    #: (:mod:`repro.core.delta`): declarative handlers and
    #: self-maintainable aggregates patch GMR entries in O(delta),
    #: falling back to compensation and then invalidation per the
    #: lattice in ``docs/DESIGN.md``.
    maintenance: str = "compensate"
    #: Physical GMR layout.  ``"rows"`` (the default) keeps the per-row
    #: object store bit-for-bit; ``"columnar"`` stores every extension
    #: as struct-of-arrays (:class:`~repro.storage.gmr_store.ColumnarGMRStore`)
    #: — interned-OID key columns, per-function result/flag arrays, and
    #: vectorized batch probes on the forward-query and invalidation hot
    #: paths.  Identical semantics (held by the layout axis of the fuzz
    #: matrix); see ``docs/PERFORMANCE.md`` for when columnar wins.
    layout: str = "rows"

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.maintenance not in ("recompute", "compensate", "delta"):
            raise ValueError(
                "maintenance must be one of 'recompute', 'compensate', "
                f"'delta'; got {self.maintenance!r}"
            )
        if self.layout not in ("rows", "columnar"):
            raise ValueError(
                f"layout must be 'rows' or 'columnar'; got {self.layout!r}"
            )


class Observability:
    """The per-base observability facade: ``db.observe``.

    Owns the :class:`~repro.observe.trace.Tracer` and the
    :class:`~repro.observe.metrics.MetricsRegistry`, builds the sinks
    :class:`ObserveConfig` asks for, and keeps a handle on the default
    ring buffer (``db.observe.ring``) for quick inspection.
    """

    def __init__(
        self,
        config: ObserveConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config = config or ObserveConfig()
        self.tracer = Tracer(enabled=config.trace, clock=clock)
        self.tracer.thread_ids = config.thread_ids
        self.metrics = MetricsRegistry(enabled=config.metrics)
        self.ring: RingBufferSink | None = None
        if config.ring_buffer is not None:
            self.ring = self.tracer.add_sink(RingBufferSink(config.ring_buffer))
        if config.jsonl_path is not None:
            self.tracer.add_sink(
                JsonlSink(
                    config.jsonl_path,
                    max_bytes=config.jsonl_max_bytes,
                    max_files=config.jsonl_max_files,
                )
            )
        if config.callback is not None:
            self.tracer.add_sink(CallbackSink(config.callback))
        if config.trace and not self.tracer.sinks:
            # Tracing without a sink would silently drop everything.
            self.ring = self.tracer.add_sink(RingBufferSink(1024))

    def events(self) -> list[TraceEvent]:
        """The default ring buffer's contents (empty without one)."""
        return self.ring.events() if self.ring is not None else []
