"""The metrics registry: counters, gauges and fixed-bucket histograms.

This subsumes the ad-hoc :class:`~repro.core.manager.ManagerStats`
counters: every ``ManagerStats`` field is mirrored into the registry as
a *view* metric named ``manager.<field>`` (see
:func:`install_stats_views`), so one ``registry.as_dict()`` call renders
the whole maintenance cost picture — the quantities behind Figs. 7–15 —
without the caller knowing which subsystem owns which counter.
``ManagerStats`` itself stays as the compatibility shim; new metrics are
native registry objects.

Native metrics are plain Python objects bound once (the manager resolves
``registry.counter("rrr.probes")`` at construction and keeps the object
as an attribute), so the hot-path cost of an increment is one attribute
read plus one integer add.  With ``MetricsRegistry(enabled=False)``
every factory returns the shared :data:`NULL_METRIC`, whose methods do
nothing — the call sites stay unconditional and disabled mode degrades
to a no-op method call.

Histogram buckets are fixed at registration (Prometheus-style ``le``
upper bounds plus an implicit ``+Inf`` overflow bucket); the standard
bucket ladders for the quantities the issue calls out — invalidation
wave width, RRR probe fan-out, rematerialization latency, scheduler
queue depth — are module constants.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import fields as dataclass_fields
from typing import Any, Callable

#: Entries affected by one invalidation wave.
WAVE_WIDTH_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)
#: RRR entries popped by one probe (0 = the probe found nothing).
PROBE_FANOUT_BUCKETS: tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64)
#: Seconds one rematerialization (guarded body call) took.
REMAT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)
#: Revalidation-scheduler queue depth observed at scheduling time.
QUEUE_DEPTH_BUCKETS: tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128)


class NullMetric:
    """The do-nothing metric a disabled registry hands out."""

    __slots__ = ()
    name = "<disabled>"
    value = 0
    count = 0
    total = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_METRIC = NullMetric()


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down (queue depths, sizes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram (``le`` upper bounds + ``+Inf`` overflow).

    ``counts[i]`` counts observations ``v <= buckets[i]`` exclusive of
    lower buckets; ``counts[-1]`` is the overflow bucket.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total")

    def __init__(self, name: str, buckets: tuple[float, ...]) -> None:
        if not buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        self.name = name
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(buckets) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value

    @property
    def value(self) -> int:
        """Observation count — lets ``as_dict`` treat metrics uniformly."""
        return self.count

    def snapshot(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
        }


class ViewMetric:
    """A read-only metric whose value is computed on access.

    The ``ManagerStats`` compatibility shim: each stats field becomes a
    view reading the live dataclass, so legacy counters and native
    registry metrics render through one interface.
    """

    __slots__ = ("name", "_getter")

    def __init__(self, name: str, getter: Callable[[], Any]) -> None:
        self.name = name
        self._getter = getter

    @property
    def value(self) -> Any:
        return self._getter()


class MetricsRegistry:
    """Name-keyed registry of counters, gauges, histograms and views.

    Factories are get-or-create: asking twice for the same name returns
    the same object (so independently instrumented modules share a
    metric by naming convention).  A disabled registry hands out
    :data:`NULL_METRIC` from every factory and reports no names.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Any] = {}
        self._views: dict[str, ViewMetric] = {}

    # -- factories -------------------------------------------------------------

    def _get_or_create(self, name: str, factory: Callable[[], Any], kind: type):
        if not self.enabled:
            return NULL_METRIC
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} is already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def histogram(
        self, name: str, buckets: tuple[float, ...]
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, buckets), Histogram
        )

    def view(self, name: str, getter: Callable[[], Any]) -> ViewMetric:
        """Register (or replace) a computed read-only metric."""
        metric = ViewMetric(name, getter)
        if self.enabled:
            self._views[name] = metric
        return metric

    # -- reading ---------------------------------------------------------------

    def get(self, name: str) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._views.get(name)
        return metric

    def names(self) -> list[str]:
        return sorted(set(self._metrics) | set(self._views))

    def as_dict(self) -> dict[str, Any]:
        """Every metric's current value (histograms as snapshots)."""
        out: dict[str, Any] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                out[name] = metric.snapshot()
            else:
                out[name] = metric.value
        for name, metric in self._views.items():
            out[name] = metric.value
        return out

    # -- persistence -----------------------------------------------------------

    def dump_state(self) -> dict:
        """Portable snapshot of the *native* metrics (views are derived
        from ``ManagerStats``, which persists separately)."""
        state: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                state["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                state["gauges"][name] = metric.value
            elif isinstance(metric, Histogram):
                state["histograms"][name] = metric.snapshot()
        return state

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`dump_state` snapshot.

        Mutates existing metric objects *in place* (subsystems hold
        direct references to them) and creates any that are not bound
        yet.
        """
        if not self.enabled:
            return
        for name, value in state.get("counters", {}).items():
            self.counter(name).value = int(value)
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).value = value
        for name, snapshot in state.get("histograms", {}).items():
            histogram = self.histogram(
                name, tuple(snapshot.get("buckets", (1,)))
            )
            counts = [int(c) for c in snapshot.get("counts", [])]
            if len(counts) == len(histogram.counts):
                histogram.counts = counts
            histogram.count = int(snapshot.get("count", 0))
            histogram.total = float(snapshot.get("sum", 0.0))


def install_stats_views(registry: MetricsRegistry, stats: Any) -> None:
    """Mirror every field of a stats dataclass as ``manager.<field>``.

    Field-introspective on purpose (``dataclasses.fields``): a counter
    added to :class:`~repro.core.manager.ManagerStats` later shows up in
    the registry automatically, the same property the fixed
    ``ManagerStats.delta`` relies on.
    """
    for field in dataclass_fields(stats):
        registry.view(
            f"manager.{field.name}",
            lambda _stats=stats, _name=field.name: getattr(_stats, _name),
        )
