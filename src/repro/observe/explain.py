"""EXPLAIN reports for materialization maintenance.

``db.explain()`` / ``gmr.explain()`` render, per function id, why each
GMR row is VALID / INVALID / ERROR right now, which notification path
(RelAttr/SchemaDepFct shortcut, ObjDepFct filter, ``InvalidatedFct``
declaration, compensating action, batch fallback) fired — or was
bypassed — on the last invalidation wave, and the per-fid / per-strategy
maintenance cost tallies (RRR probes, popped entries,
rematerializations, compensations, guard errors).

The tallies come from :attr:`GMRManager.fid_tallies`, which the manager
increments in the *same* helper that increments the registry's native
counters — so ``report.totals`` equals the registry's ``rrr.probes`` /
``remat.count`` by construction (the acceptance cross-check in
``tests/observe/test_observe_explain.py`` asserts it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.concurrency.sharding import shard_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.gmr import GMR
    from repro.core.manager import GMRManager

#: Tally key for RRR probes not attributable to one fid (the wholesale
#: ``pop_object`` probe of a deletion serves every fid at once).
FORGET_KEY = "__forget__"

TALLY_FIELDS = (
    "probes",
    "probe_entries",
    "rematerializations",
    "compensations",
    "delta_patches",
    "errors",
    "invalidations",
)


def new_tally() -> dict[str, int]:
    return {name: 0 for name in TALLY_FIELDS}


@dataclass(frozen=True)
class ExplainRow:
    """One GMR entry of one fid."""

    args: tuple
    state: str  # "valid" | "invalid" | "error"
    #: The last maintenance action that touched this entry (empty when
    #: nothing has since population / accounting is disabled).
    note: str


@dataclass(frozen=True)
class FidExplain:
    """One function id's section of the report."""

    fid: str
    gmr_name: str
    strategy: str
    valid: int
    invalid: int
    error: int
    rows: tuple[ExplainRow, ...]
    tally: dict = field(default_factory=new_tally)
    breaker: str = "closed"
    quarantined: bool = False
    pending_retries: int = 0


@dataclass(frozen=True)
class WaveExplain:
    """The last invalidation wave the manager processed."""

    oid: Any
    #: Which notification path delivered it: ``naive`` (Figure 4, no
    #: shortcut), ``schema_dep`` (RelAttr shortcut), ``obj_dep`` (the
    #: ObjDepFct filter fired), ``batch_fallback`` (ObjDepFct bypassed —
    #: a create adaptation was pending), ``invalidated_fct`` (Def. 5.3),
    #: ``batch`` (flush replay of a coalesced event), ``forget``
    #: (deletion's wholesale probe), ``direct`` (API call).
    via: str
    fids: tuple[str, ...]
    #: Function ids a compensating action excluded from the wave
    #: (the Sec. 5.4 shortcut: compensated, hence not invalidated).
    exclude: tuple[str, ...]
    width: int
    probes: int


@dataclass(frozen=True)
class ShardExplain:
    """One shard's slice of the engine (sharded bases only).

    Built by grouping the very same rows the per-fid sections report
    by ``shard_of(args)``, so the shard counts reconcile with the fid
    sections — and through them with the metrics registry — by
    construction; ``pending`` reads the shard's own scheduler.
    """

    shard: int
    entries: int
    valid: int
    invalid: int
    error: int
    pending: int


@dataclass(frozen=True)
class ExplainReport:
    """What :meth:`GMRManager.explain` returns."""

    fids: tuple[FidExplain, ...]
    totals: dict
    per_strategy: dict
    last_wave: WaveExplain | None
    #: Tally keys not owned by a live GMR fid (``__forget__``, fids of
    #: dropped GMRs) — included so ``totals`` stays exhaustive.
    other_tallies: dict = field(default_factory=dict)
    #: Per-shard breakdown; empty on unsharded bases (``shards=1``).
    shards: tuple[ShardExplain, ...] = ()
    #: Storage health state (``healthy`` / ``degraded_read_only`` /
    #: ``failed`` — see :mod:`repro.core.health`) and lifetime I/O-error
    #: count of the owning object base.
    health: str = "healthy"
    io_errors: int = 0

    def fid(self, fid: str) -> FidExplain:
        for section in self.fids:
            if section.fid == fid:
                return section
        raise KeyError(fid)

    def render(self, *, max_rows: int = 20) -> str:
        lines = ["EXPLAIN materialization"]
        totals = " ".join(f"{k}={v}" for k, v in self.totals.items())
        lines.append(f"totals: {totals}")
        lines.append(f"health: {self.health} io_errors={self.io_errors}")
        if self.last_wave is not None:
            wave = self.last_wave
            lines.append(
                f"last wave: oid={wave.oid} via={wave.via} "
                f"fids={list(wave.fids)} exclude={list(wave.exclude)} "
                f"width={wave.width} probes={wave.probes}"
            )
        for strategy, tally in sorted(self.per_strategy.items()):
            parts = " ".join(f"{k}={v}" for k, v in tally.items() if v)
            lines.append(f"strategy {strategy}: {parts or '(idle)'}")
        for shard in self.shards:
            lines.append(
                f"shard {shard.shard}: {shard.entries} entries "
                f"({shard.valid} valid / {shard.invalid} invalid / "
                f"{shard.error} error); pending={shard.pending}"
            )
        for section in self.fids:
            tally = " ".join(
                f"{k}={v}" for k, v in section.tally.items() if v
            )
            lines.append(
                f"{section.gmr_name} [{section.strategy}] {section.fid}: "
                f"{section.valid} valid / {section.invalid} invalid / "
                f"{section.error} error; breaker={section.breaker}"
                + (" QUARANTINED" if section.quarantined else "")
                + (
                    f"; retries_pending={section.pending_retries}"
                    if section.pending_retries
                    else ""
                )
                + (f"; {tally}" if tally else "")
            )
            for row in section.rows[:max_rows]:
                note = f"  {row.note}" if row.note else ""
                lines.append(
                    f"  {row.args!r} {row.state.upper()}{note}"
                )
            hidden = len(section.rows) - max_rows
            if hidden > 0:
                lines.append(f"  ... {hidden} more rows")
        if self.other_tallies:
            for key, tally in sorted(self.other_tallies.items()):
                parts = " ".join(f"{k}={v}" for k, v in tally.items() if v)
                lines.append(f"(maintenance) {key}: {parts or '(idle)'}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _sum_into(total: dict, tally: dict) -> None:
    for key, value in tally.items():
        total[key] = total.get(key, 0) + value


def build_explain(
    manager: "GMRManager", gmr: "GMR | None" = None
) -> ExplainReport:
    """Assemble the report for one GMR or the whole manager."""
    targets = [gmr] if gmr is not None else manager.gmrs()
    sections: list[FidExplain] = []
    per_strategy: dict[str, dict] = {}
    covered: set[str] = set()
    breaker = manager.breaker
    shard_count = getattr(manager, "_shards", 1)
    # valid/invalid/error/entries per shard (sharded bases only).
    shard_counts = [[0, 0, 0, 0] for _ in range(shard_count)]
    for target in targets:
        strategy = target.strategy.value
        strategy_tally = per_strategy.setdefault(strategy, new_tally())
        section_fids = list(target.fids)
        if target.restriction is not None:
            section_fids.append(target.predicate_fid)
        for fid in section_fids:
            covered.add(fid)
            tally = dict(manager.fid_tallies.get(fid, new_tally()))
            _sum_into(strategy_tally, tally)
            is_predicate = fid == target.predicate_fid
            rows: list[ExplainRow] = []
            valid = invalid = error = 0
            if not is_predicate:
                for args in sorted(target.args(), key=repr):
                    state = target.entry_state(args, fid)
                    if shard_count > 1:
                        counts = shard_counts[shard_of(args, shard_count)]
                        counts[3] += 1
                        if state == "valid":
                            counts[0] += 1
                        elif state == "error":
                            counts[2] += 1
                        else:
                            counts[1] += 1
                    if state == "valid":
                        valid += 1
                    elif state == "error":
                        error += 1
                    else:
                        invalid += 1
                    rows.append(
                        ExplainRow(
                            args=args,
                            state=state,
                            note=manager._row_notes.get((fid, args), ""),
                        )
                    )
            sections.append(
                FidExplain(
                    fid=fid,
                    gmr_name=target.name,
                    strategy=strategy,
                    valid=valid,
                    invalid=invalid,
                    error=error,
                    rows=tuple(rows),
                    tally=tally,
                    breaker=breaker.state(fid).value,
                    quarantined=breaker.quarantined(fid),
                    pending_retries=manager.scheduler_pending_for(fid),
                )
            )
    totals = new_tally()
    other: dict[str, dict] = {}
    if gmr is None:
        # Whole-manager report: totals must account for *every* tally the
        # metrics registry counted, including probes not attributable to
        # a live GMR fid.
        for key, tally in manager.fid_tallies.items():
            _sum_into(totals, tally)
            if key not in covered:
                other[key] = dict(tally)
    else:
        for section in sections:
            _sum_into(totals, section.tally)
    wave = manager.last_wave
    health = manager._db.health
    shards: tuple[ShardExplain, ...] = ()
    if shard_count > 1:
        shards = tuple(
            ShardExplain(
                shard=index,
                entries=counts[3],
                valid=counts[0],
                invalid=counts[1],
                error=counts[2],
                pending=manager.schedulers[index].pending(),
            )
            for index, counts in enumerate(shard_counts)
        )
    return ExplainReport(
        fids=tuple(sections),
        totals=totals,
        per_strategy=per_strategy,
        last_wave=wave,
        other_tallies=other,
        shards=shards,
        health=health.state.value,
        io_errors=health.io_errors,
    )
