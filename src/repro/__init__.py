"""repro — Function Materialization in Object Bases.

A full reproduction of Kemper, Kilger & Moerkotte's SIGMOD 1991 system:
an object base (the GOM data model) with *function materialization* —
precomputed, incrementally maintained function results stored in
Generalized Materialization Relations (GMRs).

Quickstart::

    from repro import ObjectBase, Strategy

    db = ObjectBase()
    db.define_tuple_type("Point", {"X": "float", "Y": "float"})
    db.define_operation(
        "Point", "norm", [], "float",
        lambda self: (self.X * self.X + self.Y * self.Y) ** 0.5,
    )
    p = db.new("Point", X=3.0, Y=4.0)
    db.materialize([("Point", "norm")])
    assert p.norm() == 5.0          # served from the GMR
    p.set_X(6.0)                    # invalidates + rematerializes
    assert p.norm() == (36.0 + 16.0) ** 0.5

See :mod:`repro.domains.geometry` / :mod:`repro.domains.company` for the
paper's two benchmark schemas and :mod:`repro.bench` for the harness
that regenerates every figure of the evaluation section.
"""

from repro.gom import Handle, InstrumentationLevel, ObjectBase, Oid
from repro.core import (
    GMR,
    BreakerState,
    FaultPolicy,
    FlushReport,
    GMRManager,
    RangeRestriction,
    Strategy,
    ValueRestriction,
)
from repro.observe import (
    ExplainReport,
    MaterializationConfig,
    MetricsRegistry,
    ObserveConfig,
    Trace,
    Tracer,
)
from repro.errors import (
    FunctionExecutionError,
    FunctionQuarantinedError,
    FunctionTimeoutError,
)
from repro.core.restricted import RestrictionSpec
from repro.predicates import Variable
from repro.asr import AccessSupportRelation, ASRManager
from repro.gom.transactions import TransactionError
from repro.persistence import (
    CheckpointReport,
    RecoveryReport,
    base_state,
    checkpoint,
    dump_object_base,
    load_object_base,
    recover,
    verify_recovery,
)
from repro.storage.wal import ShardedWriteAheadLog, WriteAheadLog

__version__ = "1.0.0"

__all__ = [
    "ObjectBase",
    "Handle",
    "Oid",
    "InstrumentationLevel",
    "GMR",
    "GMRManager",
    "Strategy",
    "FaultPolicy",
    "BreakerState",
    "FunctionExecutionError",
    "FunctionTimeoutError",
    "FunctionQuarantinedError",
    "RestrictionSpec",
    "ValueRestriction",
    "RangeRestriction",
    "Variable",
    "AccessSupportRelation",
    "ASRManager",
    "TransactionError",
    "MaterializationConfig",
    "ObserveConfig",
    "Trace",
    "Tracer",
    "MetricsRegistry",
    "ExplainReport",
    "FlushReport",
    "CheckpointReport",
    "RecoveryReport",
    "dump_object_base",
    "load_object_base",
    "checkpoint",
    "recover",
    "base_state",
    "verify_recovery",
    "WriteAheadLog",
    "ShardedWriteAheadLog",
    "__version__",
]
