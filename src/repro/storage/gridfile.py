"""A grid file: the multi-dimensional storage structure (MDS) of Sec. 3.3.

The paper stores low-arity GMRs in a single multi-dimensional index over
the fields ``O1..On, f1..fm`` (citing Nievergelt et al.'s grid file) and
falls back to conventional indexes beyond three or four dimensions.

This is a classic two-level grid file:

* per-dimension *scales* — sorted lists of split boundaries partitioning
  the domain into intervals;
* a *directory* mapping each cell (one interval index per dimension) to a
  data bucket; several cells may share one bucket (bucket regions);
* data buckets of fixed capacity placed on simulated pages.

On bucket overflow the structure first tries to split the bucket's cell
region between existing cells; if the bucket covers a single cell, a new
boundary is introduced on the dimension with the largest value spread
(cyclic tie-break), which refines the grid for all buckets but only
splits the overflowing one.

Supported queries: exact point lookup, partial-match and range queries
(any combination of fixed values, ranges and wildcards per dimension —
exactly the ``?`` / ``[lb, ub]`` / ``–`` retrieval patterns of Sec. 3.2).
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterator, Sequence
from itertools import product
from typing import Any

from repro.storage.pages import BufferManager, PageStore

_DEFAULT_BUCKET_CAPACITY = 32


class _Bucket:
    __slots__ = ("entries", "cells", "page_id")

    def __init__(self, page_id: int) -> None:
        # entries: list of (point, value) with point a tuple of scalars
        self.entries: list[tuple[tuple[Any, ...], Any]] = []
        self.cells: set[tuple[int, ...]] = set()
        self.page_id = page_id


class GridFile:
    """Grid file over ``dimensions`` comparable scalar coordinates."""

    def __init__(
        self,
        dimensions: int,
        page_store: PageStore | None = None,
        buffer: BufferManager | None = None,
        *,
        bucket_capacity: int = _DEFAULT_BUCKET_CAPACITY,
        segment: str = "gridfile",
    ) -> None:
        if dimensions < 1:
            raise ValueError("grid file needs at least one dimension")
        self.dimensions = dimensions
        self.bucket_capacity = bucket_capacity
        self._pages = page_store
        self._buffer = buffer
        self._segment = segment
        self._size = 0
        self._scales: list[list[Any]] = [[] for _ in range(dimensions)]
        root = self._new_bucket()
        origin = (0,) * dimensions
        root.cells.add(origin)
        self._directory: dict[tuple[int, ...], _Bucket] = {origin: root}
        self._next_split_dim = 0

    # -- plumbing --------------------------------------------------------------

    def _new_bucket(self) -> _Bucket:
        if self._pages is None:
            return _Bucket(-1)
        placement = self._pages.place(self._segment, self._pages.page_size)
        return _Bucket(placement.page_id)

    def _touch(self, bucket: _Bucket, *, write: bool = False) -> None:
        if self._buffer is not None and bucket.page_id >= 0:
            self._buffer.touch(bucket.page_id, write=write)

    def _cell_of(self, point: Sequence[Any]) -> tuple[int, ...]:
        return tuple(
            bisect_right(self._scales[dim], point[dim])
            for dim in range(self.dimensions)
        )

    def _check_point(self, point: Sequence[Any]) -> tuple[Any, ...]:
        if len(point) != self.dimensions:
            raise ValueError(
                f"point has {len(point)} coordinates, "
                f"grid file has {self.dimensions} dimensions"
            )
        return tuple(point)

    # -- public API --------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def scales(self) -> list[list[Any]]:
        """Current split boundaries per dimension (for inspection/tests)."""
        return [list(scale) for scale in self._scales]

    def insert(self, point: Sequence[Any], value: Any) -> None:
        point = self._check_point(point)
        cell = self._cell_of(point)
        bucket = self._directory[cell]
        self._touch(bucket, write=True)
        bucket.entries.append((point, value))
        self._size += 1
        if len(bucket.entries) > self.bucket_capacity:
            self._split(bucket)

    def remove(self, point: Sequence[Any], value: Any) -> bool:
        point = self._check_point(point)
        bucket = self._directory[self._cell_of(point)]
        self._touch(bucket, write=True)
        for index, entry in enumerate(bucket.entries):
            if entry == (point, value):
                bucket.entries.pop(index)
                self._size -= 1
                return True
        return False

    def search(self, point: Sequence[Any]) -> list[Any]:
        """Exact point lookup — touches exactly one bucket."""
        point = self._check_point(point)
        bucket = self._directory[self._cell_of(point)]
        self._touch(bucket)
        return [value for stored, value in bucket.entries if stored == point]

    def query(
        self, conditions: Sequence[tuple[Any, Any] | Any | None]
    ) -> Iterator[tuple[tuple[Any, ...], Any]]:
        """Partial-match / range query.

        ``conditions`` has one entry per dimension:

        * ``None`` — wildcard (the paper's "don't care"),
        * a ``(low, high)`` tuple — inclusive range; either end may be
          ``None`` for an open side,
        * any other value — exact match on that coordinate.
        """
        if len(conditions) != self.dimensions:
            raise ValueError("one condition per dimension required")
        index_ranges: list[range] = []
        for dim, condition in enumerate(conditions):
            count = len(self._scales[dim]) + 1
            if condition is None:
                index_ranges.append(range(count))
            elif isinstance(condition, tuple) and len(condition) == 2:
                low, high = condition
                start = 0 if low is None else bisect_right(self._scales[dim], low)
                stop = (
                    count
                    if high is None
                    else bisect_right(self._scales[dim], high) + 1
                )
                index_ranges.append(range(start, min(stop, count)))
            else:
                position = bisect_right(self._scales[dim], condition)
                index_ranges.append(range(position, position + 1))

        seen: set[int] = set()
        for cell in product(*index_ranges):
            bucket = self._directory.get(cell)
            if bucket is None or id(bucket) in seen:
                continue
            seen.add(id(bucket))
            self._touch(bucket)
            for point, value in bucket.entries:
                if self._matches(point, conditions):
                    yield point, value

    def items(self) -> Iterator[tuple[tuple[Any, ...], Any]]:
        yield from self.query([None] * self.dimensions)

    @staticmethod
    def _matches(
        point: tuple[Any, ...],
        conditions: Sequence[tuple[Any, Any] | Any | None],
    ) -> bool:
        for coordinate, condition in zip(point, conditions):
            if condition is None:
                continue
            if isinstance(condition, tuple) and len(condition) == 2:
                low, high = condition
                if low is not None and coordinate < low:
                    return False
                if high is not None and coordinate > high:
                    return False
            elif coordinate != condition:
                return False
        return True

    # -- splitting --------------------------------------------------------------

    def _split(self, bucket: _Bucket) -> None:
        if len(bucket.cells) > 1:
            self._split_region(bucket)
        else:
            self._split_grid(bucket)

    def _split_region(self, bucket: _Bucket) -> None:
        """Partition a multi-cell bucket region between two buckets."""
        # Choose the dimension along which the region spans the most cells.
        cells = sorted(bucket.cells)
        best_dim = 0
        best_span = 0
        for dim in range(self.dimensions):
            coords = {cell[dim] for cell in cells}
            if len(coords) > best_span:
                best_span = len(coords)
                best_dim = dim
        if best_span < 2:
            # Region is a single cell after all; refine the grid instead.
            self._split_grid(bucket)
            return
        coords = sorted({cell[best_dim] for cell in cells})
        pivot = coords[len(coords) // 2]
        new_bucket = self._new_bucket()
        moving = {cell for cell in bucket.cells if cell[best_dim] >= pivot}
        bucket.cells -= moving
        new_bucket.cells = moving
        for cell in moving:
            self._directory[cell] = new_bucket
        kept: list[tuple[tuple[Any, ...], Any]] = []
        for entry in bucket.entries:
            if self._cell_of(entry[0]) in moving:
                new_bucket.entries.append(entry)
            else:
                kept.append(entry)
        bucket.entries = kept
        self._touch(new_bucket, write=True)
        self._touch(bucket, write=True)
        if len(bucket.entries) > self.bucket_capacity:
            self._split(bucket)
        if len(new_bucket.entries) > self.bucket_capacity:
            self._split(new_bucket)

    def _split_grid(self, bucket: _Bucket) -> None:
        """Introduce a new scale boundary to split a single-cell bucket."""
        (cell,) = bucket.cells
        dim, boundary = self._choose_boundary(bucket)
        if dim is None:
            # All points identical in every dimension: overflow bucket —
            # we simply allow it to exceed capacity (duplicates cluster).
            return
        scale = self._scales[dim]
        insert_at = bisect_right(scale, boundary)
        scale.insert(insert_at, boundary)
        # Remap the directory: interval indices >= insert_at + 1 shift up;
        # cells exactly at interval insert_at split into two cells that
        # initially share their bucket.
        new_directory: dict[tuple[int, ...], _Bucket] = {}
        for old_cell, old_bucket in self._directory.items():
            coordinate = old_cell[dim]
            if coordinate > insert_at:
                new_cell = old_cell[:dim] + (coordinate + 1,) + old_cell[dim + 1 :]
                new_directory[new_cell] = old_bucket
            elif coordinate == insert_at:
                upper_cell = old_cell[:dim] + (coordinate + 1,) + old_cell[dim + 1 :]
                new_directory[old_cell] = old_bucket
                new_directory[upper_cell] = old_bucket
            else:
                new_directory[old_cell] = old_bucket
        self._directory = new_directory
        # Rebuild every bucket's cell set from the remapped directory so
        # no bucket keeps stale coordinates.
        cells_by_bucket: dict[int, set[tuple[int, ...]]] = {}
        buckets_by_id: dict[int, _Bucket] = {}
        for new_cell, mapped_bucket in new_directory.items():
            cells_by_bucket.setdefault(id(mapped_bucket), set()).add(new_cell)
            buckets_by_id[id(mapped_bucket)] = mapped_bucket
        for bucket_id, cells in cells_by_bucket.items():
            buckets_by_id[bucket_id].cells = cells
        # The overflowing bucket now covers two cells — split the region.
        self._split_region(bucket)

    def _choose_boundary(self, bucket: _Bucket) -> tuple[int | None, Any]:
        """Pick a dimension and boundary value splitting the entries.

        A candidate boundary must actually partition the bucket's points
        under ``bisect_right`` semantics *given the existing scale* —
        re-inserting a value that is already a scale boundary at the low
        edge of the cell separates nothing (equal coordinates sort after
        every duplicate) and would split forever.
        """
        start = self._next_split_dim
        for offset in range(self.dimensions):
            dim = (start + offset) % self.dimensions
            values = sorted({point[dim] for point, _ in bucket.entries})
            if len(values) < 2:
                continue
            middle = (len(values) - 1) // 2
            # Try the middle boundary first, then the remaining candidates;
            # for numeric scales also midpoints between neighbours (they
            # can separate even when every value already sits on a scale
            # boundary).
            candidates = [values[middle]] + [
                value
                for index, value in enumerate(values[:-1])
                if index != middle
            ]
            if all(isinstance(value, (int, float)) for value in values):
                candidates.extend(
                    (first + second) / 2
                    for first, second in zip(values, values[1:])
                )
            for boundary in candidates:
                if self._separates(bucket, dim, boundary):
                    self._next_split_dim = (dim + 1) % self.dimensions
                    return dim, boundary
        return None, None

    def _separates(self, bucket: _Bucket, dim: int, boundary: Any) -> bool:
        """Would inserting ``boundary`` split the bucket's entries?"""
        trial = sorted(self._scales[dim] + [boundary])
        cells = {bisect_right(trial, point[dim]) for point, _ in bucket.entries}
        return len(cells) >= 2
