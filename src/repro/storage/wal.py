"""Write-ahead logging of elementary updates (crash-consistent durability).

The paper's design funnels every state change through rewritten
elementary update operations (``set_A``, ``insert``, ``remove``,
``create``, ``delete`` — Sec. 4.3).  That funnel is exactly a logical
redo log: recording the elementary update stream and replaying it
through the ordinary instrumented update paths reconstructs not just the
object graph but every derived structure — GMR extensions, validity
flags, the RRR, ``ObjDepFct`` markings — because the schema-rewrite
notification machinery runs during replay exactly as it did live.  No
physical logging of the materializations is needed; they are
self-maintaining under the logged updates, the same observation that
makes materialized views self-maintainable.

Frame format (append-only)::

    +----------------+----------------+------------------------+
    | length (u32 BE)| CRC32 (u32 BE) | payload (UTF-8 JSON)   |
    +----------------+----------------+------------------------+

The CRC covers the payload.  A reader stops at the first incomplete or
corrupt frame — a torn final write (the crash landed mid-frame) simply
truncates the logical log at the last durable record.

Record kinds:

===============  =================================================
``set``          ``{oid, attr, value}`` — elementary ``t.set_A``
``insert``       ``{oid, value[, pos]}`` — collection insert
``remove``       ``{oid, value}`` — collection remove
``create``       ``{oid, type[, data][, elements]}``
``delete``       ``{oid}``
``txn_begin``    transaction scope opened (possibly nested)
``txn_commit``   scope committed
``txn_abort``    scope rolled back (the inverse updates precede it)
``batch_begin``  outermost ``db.batch()`` scope opened
``batch_flush``  a query forced a mid-batch maintenance flush
``batch_end``    outermost batch scope exited (flush ran)
===============  =================================================

Atomicity: non-transactional records are durable once appended.  Records
inside a transaction are durable at the *outermost* ``txn_commit``; a
crash before it discards the whole suffix (``committed_prefix``).  An
aborted transaction is already neutral on disk — its inverse updates
were logged during rollback — so its records replay and net out.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from typing import Any, BinaryIO, Callable, Iterator

from repro.errors import ReproError
from repro.gom.oid import Oid
from repro.storage.faultfs import fsync_file

_HEADER = struct.Struct(">II")

#: Sanity bound on a single frame's payload; anything larger is treated
#: as log corruption rather than attempted as an allocation.
_MAX_PAYLOAD = 1 << 26


class WalError(ReproError):
    """The write-ahead log cannot be written or decoded."""


# -- value encoding (shared with persistence) ------------------------------------


def encode_value(value: Any) -> Any:
    """JSON-safe encoding of an elementary-update value (OIDs tagged)."""
    if isinstance(value, Oid):
        return {"$oid": value.value}
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    raise WalError(f"value {value!r} is not log-representable")


def decode_value(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"$oid"}:
        return Oid(value["$oid"])
    return value


# -- frame codec -----------------------------------------------------------------


def encode_frame(record: dict) -> bytes:
    """One length-prefixed, checksummed frame for ``record``."""
    payload = json.dumps(
        record, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def iter_frames(data: bytes) -> Iterator[tuple[int, dict]]:
    """Yield ``(start_offset, record)`` for every intact frame.

    Stops — without raising — at the first torn or corrupt frame: an
    incomplete header, a truncated payload, a CRC mismatch or undecodable
    JSON all mark the end of the durable log.
    """
    position = 0
    total = len(data)
    while position + _HEADER.size <= total:
        length, checksum = _HEADER.unpack_from(data, position)
        if length > _MAX_PAYLOAD:
            return
        end = position + _HEADER.size + length
        if end > total:
            return
        payload = data[position + _HEADER.size : end]
        if zlib.crc32(payload) != checksum:
            return
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return
        if not isinstance(record, dict):
            return
        yield position, record
        position = end


def read_records(path: str) -> list[dict]:
    """All intact records of the log at ``path`` (torn tail dropped)."""
    if not os.path.exists(path):
        return []
    with open(path, "rb") as handle:
        data = handle.read()
    return [record for _, record in iter_frames(data)]


def committed_prefix(records: list[dict]) -> tuple[list[dict], int]:
    """Split a record stream into (durable records, discarded count).

    Records outside any transaction are durable immediately.  Records
    inside a transaction become durable when the *outermost* scope
    terminates — on ``txn_commit`` *or* ``txn_abort``, because an aborted
    transaction's inverse updates are part of the stream and replaying
    the whole scope nets out to nothing.  A trailing scope that never
    terminated (the crash hit mid-transaction) is discarded wholesale.
    """
    durable: list[dict] = []
    buffered: list[dict] = []
    depth = 0
    for record in records:
        kind = record.get("kind")
        if kind == "txn_begin":
            depth += 1
            buffered.append(record)
            continue
        if kind in ("txn_commit", "txn_abort"):
            if depth == 0:
                # Unmatched terminator (log starts mid-transaction after
                # a checkpoint truncation race); ignore defensively.
                continue
            depth -= 1
            buffered.append(record)
            if depth == 0:
                durable.extend(buffered)
                buffered.clear()
            continue
        if depth:
            buffered.append(record)
        else:
            durable.append(record)
    return durable, len(buffered)


class WriteAheadLog:
    """An append-only elementary-update log attached to an object base.

    ``fileobj`` substitutes the backing file — the fault-injection
    harness passes a wrapper that simulates a crash after a byte budget.
    ``file_factory`` is the less intrusive seam: ``factory(path)``
    produces the backing file (the storage-fault harness returns
    :class:`~repro.storage.faultfs.FaultyFile` wrappers).  ``fsync=True``
    additionally forces the record to stable storage on every append
    (the durable-by-default mode for real deployments; the tests run
    without it since the simulated crash model is the byte budget, not
    the OS cache).

    Failure discipline: an append that raises leaves the log *broken* —
    the on-disk tail may hold a torn frame past the last durable record
    boundary.  :meth:`repair` truncates that tail back to the boundary;
    no new append is accepted while broken, because a frame written
    after torn bytes would be silently cut by the recovery reader.
    """

    def __init__(
        self,
        path: str | None = None,
        *,
        fileobj: BinaryIO | None = None,
        fsync: bool = False,
        file_factory: Callable[[str], Any] | None = None,
    ) -> None:
        if fileobj is None:
            if path is None:
                raise WalError("WriteAheadLog needs a path or a fileobj")
            if file_factory is not None:
                fileobj = file_factory(path)
            else:
                fileobj = open(path, "ab")
        self.path = path
        self._file = fileobj
        self._fsync = fsync
        #: Serializes appends/truncates: concurrent writers (foreground
        #: updates racing a worker-pool drain) must not interleave the
        #: bytes of two frames.  Always armed — an uncontended lock
        #: acquisition is noise next to the write+flush it guards.
        self._lock = threading.Lock()
        self._closed = False
        #: True after a failed append: the physical tail may be torn and
        #: must be repaired before the next append.
        self._broken = False
        #: End offset of the last known-durable frame — the truncation
        #: target of :meth:`repair`.
        try:
            self._good_offset = self._file.seek(0, os.SEEK_END)
        except (OSError, ValueError, AttributeError):
            self._good_offset = 0
        #: Optional hook ``on_append(record, nbytes)`` fired after each
        #: durable append — the object base wires it to the observability
        #: layer (``wal.appends`` / ``wal.bytes`` counters, trace events).
        self.on_append: Callable[[dict, int], None] | None = None

    @property
    def broken(self) -> bool:
        """True when a failed append left a possibly-torn tail."""
        return self._broken

    def append(self, record: dict) -> None:
        """Log one record durably (write + flush before it is applied).

        Raises whatever the backing file raises; the log is then marked
        broken and refuses further appends until :meth:`repair` restores
        the tail to the last durable frame boundary.  The record is
        *not* durable when this raises — callers must not apply it.

        The failure path immediately *scrubs* the unacknowledged tail
        (best effort, without clearing the broken flag): a failed
        ``fsync`` leaves a complete, parseable frame on disk, and a
        crash before the next ``repair()`` would make recovery replay an
        update the caller was told failed — the refused update would
        silently resurrect.
        """
        frame = encode_frame(record)
        with self._lock:
            if self._closed:
                raise WalError("append on a closed write-ahead log")
            if self._broken:
                raise WalError(
                    "append on a broken write-ahead log (repair first)"
                )
            try:
                self._file.write(frame)
                self._file.flush()
                if self._fsync:
                    fsync_file(self._file)
            except Exception:
                self._broken = True
                try:
                    self._file.seek(self._good_offset)
                    self._file.truncate()
                    self._file.flush()
                except Exception:
                    pass  # the tail stays torn; repair() retries this
                raise
            self._good_offset += len(frame)
        if self.on_append is not None:
            self.on_append(record, len(frame))

    def repair(self) -> None:
        """Truncate a torn tail back to the last durable frame boundary.

        The probe step of the health re-arm path: after a failed append
        the file may end mid-frame, and any record appended after those
        bytes would be cut by the torn-tail-tolerant reader — losing an
        *acknowledged* update.  A raise here means the tail cannot be
        restored to a known-good state (callers escalate to FAILED);
        the log stays broken.
        """
        with self._lock:
            if not self._broken:
                return
            self._file.seek(self._good_offset)
            self._file.truncate()
            self._file.flush()
            self._broken = False

    def truncate(self) -> None:
        """Discard the whole log (checkpoint has absorbed it).

        Doubles as a full repair: a successful truncation leaves an
        empty, well-formed log whatever tail damage preceded it.
        """
        with self._lock:
            try:
                self._file.seek(0)
                self._file.truncate()
                self._file.flush()
            except Exception:
                self._broken = True
                raise
            self._good_offset = 0
            self._broken = False

    def close(self) -> None:
        """Close the backing file; idempotent and exception-safe.

        A second close is a no-op, and a backing file whose final
        flush-on-close fails is still considered closed (the appends
        themselves were flushed durably at append time, so nothing is
        lost) — shutdown paths never die on a disposal error.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._file.close()
        except Exception:
            pass  # already-flushed appends are durable; see docstring


# -- sharded segments ------------------------------------------------------------


def segment_path(path: str, shard: int) -> str:
    """The on-disk path of shard ``shard``'s WAL segment."""
    return f"{path}.s{shard}"


def segment_paths(path: str) -> list[str]:
    """Existing ``{path}.s{k}`` segment files, in shard order.

    Scans the directory rather than probing indices densely from 0: a
    segment file deleted by a storage fault must not hide the segments
    after it — their surviving records decide where the contiguous
    ``seq`` prefix ends (see :func:`read_records_merged`).  An empty
    list means the log at ``path`` is unsharded (or absent).
    """
    directory = os.path.dirname(path) or "."
    prefix = os.path.basename(path) + ".s"
    if not os.path.isdir(directory):
        return []
    shards: list[int] = []
    for name in os.listdir(directory):
        if name.startswith(prefix) and name[len(prefix):].isdigit():
            shards.append(int(name[len(prefix):]))
    return [segment_path(path, shard) for shard in sorted(shards)]


def read_records_merged(path: str) -> list[dict]:
    """All durable records of the log at ``path``, sharded or not.

    With ``{path}.s{k}`` segment files present, each segment is read
    with the ordinary torn-tail-tolerant frame reader and the records
    are merged by their global ``seq`` stamp.  The merged stream starts
    at seq 0 and is cut at the first *gap* in the sequence: the sharded
    writer assigns sequence numbers and appends under one lock, so at
    most one frame — the last append before a crash — can be torn, and
    every record after a missing seq is discarded rather than replayed
    out of context.  (Starting at 0 rather than the smallest surviving
    seq matters when a whole segment file is lost: its records are the
    missing prefix, and replaying only the remainder would be exactly
    the out-of-context replay the gap cut exists to prevent.)  The
    ``seq`` keys are stripped so the result is interchangeable with
    :func:`read_records` output.

    Without segment files this is exactly ``read_records(path)``.
    """
    segments = segment_paths(path)
    if not segments:
        return read_records(path)
    stamped: list[tuple[int, dict]] = []
    for segment in segments:
        for record in read_records(segment):
            seq = record.get("seq")
            if not isinstance(seq, int):
                continue  # unstamped frame in a segment: not replayable
            stamped.append((seq, record))
    stamped.sort(key=lambda item: item[0])
    merged: list[dict] = []
    expected = 0
    for seq, record in stamped:
        if seq != expected:
            break  # gap: a lost frame orders before these records
        expected = seq + 1
        record = dict(record)
        record.pop("seq", None)
        merged.append(record)
    return merged


class ShardedWriteAheadLog:
    """Per-shard WAL segment files behind the single-log interface.

    Each shard ``k`` of the engine owns the append-only segment
    ``{path}.s{k}``; a record carrying an ``"oid"`` field is routed to
    the segment of ``stable_hash(oid) % shards`` and records without one
    (transaction and batch markers) land on segment 0.  One lock
    serializes sequence-number assignment *and* the append itself, so
    the global record order is total, every frame carries a contiguous
    ``seq`` stamp, and a crash can tear at most the single in-flight
    frame — :func:`read_records_merged` then recovers the longest
    contiguous prefix, which by construction contains every committed
    frame of every other segment.

    The interface mirrors :class:`WriteAheadLog` (``append`` /
    ``truncate`` / ``close`` / ``path`` / ``on_append``) so the object
    base and the recovery path stay oblivious to the segmentation.
    """

    def __init__(
        self,
        path: str | None,
        shards: int,
        *,
        fileobjs: list[BinaryIO] | None = None,
        fsync: bool = False,
        file_factory: Callable[[str, int], Any] | None = None,
    ) -> None:
        if shards < 2:
            raise WalError("ShardedWriteAheadLog needs shards >= 2")
        if fileobjs is not None and len(fileobjs) != shards:
            raise WalError("fileobjs must supply one file per shard")
        self.path = path
        self.shards = shards
        self._segments: list[WriteAheadLog] = []
        for shard in range(shards):
            if fileobjs is not None:
                segment = WriteAheadLog(fileobj=fileobjs[shard], fsync=fsync)
            elif path is not None:
                spath = segment_path(path, shard)
                if file_factory is not None:
                    segment = WriteAheadLog(
                        spath,
                        fileobj=file_factory(spath, shard),
                        fsync=fsync,
                    )
                else:
                    segment = WriteAheadLog(spath, fsync=fsync)
            else:
                raise WalError(
                    "ShardedWriteAheadLog needs a path or fileobjs"
                )
            self._segments.append(segment)
        #: Serializes seq assignment + the routed append (see class doc).
        self._lock = threading.Lock()
        self._seq = 0
        self._closed = False
        self.on_append: Callable[[dict, int], None] | None = None

    @property
    def broken(self) -> bool:
        """True when any segment carries a possibly-torn tail."""
        return any(segment.broken for segment in self._segments)

    def segment(self, shard: int) -> WriteAheadLog:
        """The underlying :class:`WriteAheadLog` of one shard."""
        return self._segments[shard]

    def _route(self, record: dict) -> int:
        oid = record.get("oid")
        if oid is None:
            return 0
        from repro.concurrency.sharding import stable_hash

        return stable_hash(Oid(oid)) % self.shards

    def append(self, record: dict) -> None:
        """Stamp a global seq, route to the owning segment, append.

        The seq counter advances only *after* the segment append
        succeeds: a burned seq would be a permanent gap in the global
        sequence, and the merge reader cuts at the first gap — every
        later record of every shard would be silently discarded at
        recovery.
        """
        stamped = dict(record)
        with self._lock:
            stamped["seq"] = self._seq
            segment = self._segments[self._route(record)]
            segment.append(stamped)
            self._seq += 1
        if self.on_append is not None:
            self.on_append(record, len(encode_frame(stamped)))

    def repair(self) -> None:
        """Repair every broken segment's tail (see WriteAheadLog.repair)."""
        with self._lock:
            for segment in self._segments:
                segment.repair()

    def truncate(self) -> None:
        """Discard every segment (checkpoint has absorbed the log)."""
        with self._lock:
            for segment in self._segments:
                segment.truncate()
            self._seq = 0

    def close(self) -> None:
        """Close every segment; idempotent and exception-safe.

        Each segment close already swallows disposal errors, so one
        failing shard never strands the handles of the shards after it.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for segment in self._segments:
            segment.close()
