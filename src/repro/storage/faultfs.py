"""The injectable file seam: real I/O by default, faults on demand.

Every durable write the engine performs — WAL appends
(:mod:`repro.storage.wal`) and checkpoint snapshots
(:mod:`repro.persistence`) — goes through this module's two seams:

* a *file factory* (``WriteAheadLog(file_factory=...)`` /
  ``ShardedWriteAheadLog(file_factory=...)``), and
* a :class:`FileSystem` object (``persistence.checkpoint(fs=...)``)
  bundling the path-level operations an atomic snapshot needs
  (open / fsync / rename / directory fsync).

The default implementations are the thinnest possible wrappers over
``os`` and ``open`` — zero new behaviour on the production path.  The
fault half of the module (:class:`FaultPlan`, :class:`FaultyFile`,
:class:`FaultInjectingFileSystem`) lives in the library rather than the
test tree because the nightly fuzzer (``python -m repro.fuzz
--io-faults``) injects storage faults too; ``tests/_faults.py``
re-exports and builds on it.

Fault model (the I/O-error half; crashes are ``tests/_faults.py``'s
:class:`CrashingFile`, user-code failures are ``FlakyFunction``):

* ``once`` — the targeted call raises :class:`InjectedIOError` one
  time; the *next* call succeeds (a transient error: momentary ENOSPC,
  a flaky controller).
* ``persistent`` — the targeted call and every later call of that
  operation raise (the disk is gone).
* ``torn`` — a ``write`` persists only the first ``torn_bytes`` bytes,
  then raises (a partial sector write / ENOSPC mid-frame).

Faults are armed per operation (``write`` / ``flush`` / ``fsync`` /
``close`` / ``replace`` / ``fsync_dir``), optionally per shard, and fire
on the ``at``-th matching call — every call site of the engine is
reachable by choosing ``at``.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

#: Operations a fault can target.
FAULT_OPS = ("write", "flush", "fsync", "close", "replace", "fsync_dir")


class InjectedIOError(OSError):
    """The deliberate I/O failure a :class:`FaultPlan` raises.

    An ``OSError`` subclass (errno EIO) so production code handles it
    exactly like a real disk error — nothing may special-case injected
    faults.
    """

    def __init__(self, message: str) -> None:
        import errno

        super().__init__(errno.EIO, message)


def fsync_file(fileobj: Any) -> None:
    """fsync ``fileobj`` through its own seam when it offers one.

    A wrapped file (``FaultyFile``, or any test double) exposes its own
    ``fsync()``; a plain file is synced via ``os.fsync(fileno())``.  A
    file with neither (an in-memory ``BytesIO``) needs no sync.
    """
    sync = getattr(fileobj, "fsync", None)
    if sync is not None:
        sync()
        return
    fileno = getattr(fileobj, "fileno", None)
    if fileno is None:
        return
    try:
        fd = fileno()
    except (OSError, ValueError):
        return  # not backed by a real descriptor
    os.fsync(fd)


def fsync_directory(path: str) -> None:
    """Flush a directory's metadata (the rename made durable).

    The last step of the temp-file + fsync + atomic-rename protocol:
    without it the rename itself can be lost in a crash even though
    both file contents were synced.
    """
    fd = os.open(path, getattr(os, "O_DIRECTORY", 0) | os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class FileSystem:
    """Path-level I/O operations behind one injectable object.

    The default instance (:data:`REAL_FS`) delegates straight to the
    standard library; :class:`FaultInjectingFileSystem` substitutes
    fault-wrapped equivalents.  Only the operations the durable-write
    protocols need are abstracted.
    """

    def open(self, path: str, mode: str = "r", *, encoding: str | None = None):
        return open(path, mode, encoding=encoding)

    def fsync(self, fileobj: Any) -> None:
        fsync_file(fileobj)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def fsync_dir(self, path: str) -> None:
        fsync_directory(path)

    def remove(self, path: str) -> None:
        os.remove(path)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)


#: The production file system — module-level so every default argument
#: shares one stateless instance.
REAL_FS = FileSystem()


# -- fault injection ---------------------------------------------------------------


@dataclass
class _Fault:
    """One armed fault (see :meth:`FaultPlan.fail`)."""

    op: str
    at: int
    mode: str  # "once" | "persistent" | "torn"
    shard: int | None
    torn_bytes: int
    message: str
    fired: int = 0


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (for test assertions)."""

    op: str
    shard: int | None
    call_index: int
    mode: str


class FaultPlan:
    """Shared, thread-safe schedule of storage faults.

    One plan is typically shared by every file the factory hands out
    (all WAL segments, the checkpoint temp file): call counting is per
    ``(op, shard)``, so "fail the 3rd write on shard 1" addresses one
    exact call site no matter how many files exist.  Files created
    without a shard count under ``shard=None``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._faults: list[_Fault] = []
        self._counts: dict[tuple[str, int | None], int] = {}
        #: Every fault firing, in order — assert against this.
        self.fired: list[FaultEvent] = []

    def fail(
        self,
        op: str,
        *,
        at: int = 0,
        mode: str = "once",
        shard: int | None = None,
        torn_bytes: int = 0,
        message: str | None = None,
    ) -> "FaultPlan":
        """Arm one fault; returns ``self`` for chaining.

        ``op`` is one of :data:`FAULT_OPS`; ``at`` is the 0-based index
        of the matching call that fails (counted per ``(op, shard)``);
        ``mode`` is ``once`` / ``persistent`` / ``torn``; ``torn``
        applies to ``write`` and persists ``torn_bytes`` bytes before
        raising.  ``shard=None`` matches calls from any file.
        """
        if op not in FAULT_OPS:
            raise ValueError(f"unknown fault op {op!r} (use one of {FAULT_OPS})")
        if mode not in ("once", "persistent", "torn"):
            raise ValueError(f"unknown fault mode {mode!r}")
        if mode == "torn" and op != "write":
            raise ValueError("torn faults only apply to write")
        self._faults.append(
            _Fault(
                op=op,
                at=at,
                mode=mode,
                shard=shard,
                torn_bytes=torn_bytes,
                message=message or f"injected {mode} {op} fault",
            )
        )
        return self

    def clear(self) -> None:
        """Disarm every fault (the transient condition healed)."""
        with self._lock:
            self._faults.clear()

    def check(self, op: str, shard: int | None) -> _Fault | None:
        """Consume one call of ``op``; return the fault to apply, if any.

        Called by the wrappers *before* performing the operation.  The
        matching fault's raise is the caller's job (a torn write needs
        the partial write first) — this only does the counting.
        """
        with self._lock:
            index = self._counts.get((op, shard), 0)
            self._counts[(op, shard)] = index + 1
            for fault in self._faults:
                if fault.op != op:
                    continue
                if fault.shard is not None and fault.shard != shard:
                    continue
                matched = (
                    index >= fault.at
                    if fault.mode == "persistent"
                    else index == fault.at and fault.fired == 0
                )
                if not matched:
                    continue
                fault.fired += 1
                self.fired.append(
                    FaultEvent(
                        op=op, shard=shard, call_index=index, mode=fault.mode
                    )
                )
                return fault
        return None


class FaultyFile:
    """A file wrapper that consults a :class:`FaultPlan` on every call.

    Wraps binary or text files alike; operations not targeted by the
    plan pass straight through.  A torn write persists the fault's
    ``torn_bytes`` prefix (and flushes it, so the partial frame really
    is on disk) before raising.
    """

    def __init__(
        self, fileobj: Any, plan: FaultPlan, *, shard: int | None = None
    ) -> None:
        self._file = fileobj
        self._plan = plan
        self._shard = shard

    def write(self, data) -> int:
        fault = self._plan.check("write", self._shard)
        if fault is not None:
            if fault.mode == "torn" and fault.torn_bytes > 0:
                self._file.write(data[: fault.torn_bytes])
                self._file.flush()
            raise InjectedIOError(fault.message)
        return self._file.write(data)

    def flush(self) -> None:
        fault = self._plan.check("flush", self._shard)
        if fault is not None:
            raise InjectedIOError(fault.message)
        self._file.flush()

    def fsync(self) -> None:
        fault = self._plan.check("fsync", self._shard)
        if fault is not None:
            raise InjectedIOError(fault.message)
        fileno = getattr(self._file, "fileno", None)
        if fileno is None:
            return  # in-memory backing: durability is the buffer itself
        try:
            fd = fileno()
        except (OSError, ValueError):
            return
        os.fsync(fd)

    def close(self) -> None:
        fault = self._plan.check("close", self._shard)
        if fault is not None:
            raise InjectedIOError(fault.message)
        self._file.close()

    def seek(self, *args) -> int:
        return self._file.seek(*args)

    def truncate(self, *args) -> int:
        return self._file.truncate(*args)

    def tell(self) -> int:
        return self._file.tell()

    def fileno(self) -> int:
        return self._file.fileno()

    @property
    def closed(self) -> bool:
        return getattr(self._file, "closed", False)


class FaultInjectingFileSystem(FileSystem):
    """A :class:`FileSystem` whose files and renames obey a plan."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def open(self, path: str, mode: str = "r", *, encoding: str | None = None):
        return FaultyFile(
            super().open(path, mode, encoding=encoding), self.plan
        )

    def replace(self, src: str, dst: str) -> None:
        fault = self.plan.check("replace", None)
        if fault is not None:
            raise InjectedIOError(fault.message)
        super().replace(src, dst)

    def fsync_dir(self, path: str) -> None:
        fault = self.plan.check("fsync_dir", None)
        if fault is not None:
            raise InjectedIOError(fault.message)
        super().fsync_dir(path)


def wal_file_factory(
    plan: FaultPlan,
) -> Callable[[str, int | None], FaultyFile]:
    """A WAL ``file_factory`` whose files obey ``plan``.

    Suitable for both :class:`~repro.storage.wal.WriteAheadLog`
    (called with ``shard=None``) and
    :class:`~repro.storage.wal.ShardedWriteAheadLog` (called once per
    shard).
    """

    def factory(path: str, shard: int | None = None) -> FaultyFile:
        return FaultyFile(open(path, "ab"), plan, shard=shard)

    return factory
