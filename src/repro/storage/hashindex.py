"""A bucket hash index over exact-match keys.

The GMR store uses a hash index over the full argument combination
``(O1, ..., On)`` for forward queries (Sec. 3.2: "all argument objects
are specified and the corresponding function values are obtained"), and
secondary hash indexes per argument column to support
``forget_object`` row removal without exhaustive search.

Buckets are placed on simulated pages; lookups touch the bucket's page.
The directory doubles when the average bucket occupancy exceeds a
threshold (a simplified linear-hashing scheme — adequate because we only
need realistic page-touch patterns, not byte-level layout).
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.storage.pages import BufferManager, PageStore

_INITIAL_BUCKETS = 8
_MAX_AVG_OCCUPANCY = 16


class _Bucket:
    __slots__ = ("entries", "page_id")

    def __init__(self, page_id: int) -> None:
        self.entries: list[tuple[Any, Any]] = []
        self.page_id = page_id


class HashIndex:
    """Hash index mapping hashable keys to (possibly multiple) values."""

    def __init__(
        self,
        page_store: PageStore | None = None,
        buffer: BufferManager | None = None,
        *,
        segment: str = "hash",
    ) -> None:
        self._pages = page_store
        self._buffer = buffer
        self._segment = segment
        self._size = 0
        self._buckets = [self._new_bucket() for _ in range(_INITIAL_BUCKETS)]

    def _new_bucket(self) -> _Bucket:
        if self._pages is None:
            return _Bucket(-1)
        placement = self._pages.place(self._segment, self._pages.page_size)
        return _Bucket(placement.page_id)

    def _touch(self, bucket: _Bucket, *, write: bool = False) -> None:
        if self._buffer is not None and bucket.page_id >= 0:
            self._buffer.touch(bucket.page_id, write=write)

    def _bucket_for(self, key: Any) -> _Bucket:
        return self._buckets[hash(key) % len(self._buckets)]

    def __len__(self) -> int:
        return self._size

    def insert(self, key: Any, value: Any) -> None:
        bucket = self._bucket_for(key)
        self._touch(bucket, write=True)
        bucket.entries.append((key, value))
        self._size += 1
        if self._size > _MAX_AVG_OCCUPANCY * len(self._buckets):
            self._grow()

    def remove(self, key: Any, value: Any) -> bool:
        bucket = self._bucket_for(key)
        self._touch(bucket, write=True)
        for index, (stored_key, stored_value) in enumerate(bucket.entries):
            if stored_key == key and stored_value == value:
                bucket.entries.pop(index)
                self._size -= 1
                return True
        return False

    def remove_all(self, key: Any) -> int:
        """Remove every entry under ``key``; returns the number removed."""
        bucket = self._bucket_for(key)
        self._touch(bucket, write=True)
        kept = [entry for entry in bucket.entries if entry[0] != key]
        removed = len(bucket.entries) - len(kept)
        bucket.entries = kept
        self._size -= removed
        return removed

    def search(self, key: Any) -> list[Any]:
        bucket = self._bucket_for(key)
        self._touch(bucket)
        return [value for stored_key, value in bucket.entries if stored_key == key]

    def contains_key(self, key: Any) -> bool:
        bucket = self._bucket_for(key)
        self._touch(bucket)
        return any(stored_key == key for stored_key, _ in bucket.entries)

    def items(self) -> Iterator[tuple[Any, Any]]:
        for bucket in self._buckets:
            self._touch(bucket)
            yield from bucket.entries

    def _grow(self) -> None:
        old_buckets = self._buckets
        self._buckets = [self._new_bucket() for _ in range(2 * len(old_buckets))]
        count = len(self._buckets)
        for bucket in old_buckets:
            for key, value in bucket.entries:
                self._buckets[hash(key) % count].entries.append((key, value))
