"""Physical representation of GMR extensions (Sec. 3.3).

Authoritative row data lives in an argument-keyed table (rows placed on
simulated pages, clustered per GMR); secondary access paths are chosen
per the paper:

* for GMRs whose total dimensionality ``n + m`` is at most
  :data:`MDS_DIMENSION_LIMIT`, a grid file over ``(O1..On, f1..fm)`` — the
  single multi-dimensional storage structure (MDS) of the paper's
  Figure 3;
* otherwise, per-function B+ tree indexes over the result columns ("more
  conventional indexing schemes ... for GMRs of higher arity").

Only *valid*, scalar results are indexed; invalidating a result removes
it from the access path, revalidating reinserts it, so backward range
lookups never return stale values.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator
from contextlib import nullcontext
from typing import Any

from repro.storage.btree import BPlusTree
from repro.storage.gridfile import GridFile
from repro.storage.pages import BufferManager, PageStore, Placement

#: Shared no-op context for the single-threaded (``locks is None``) case.
_NULL_CTX = nullcontext()

#: Grid files degrade beyond three or four dimensions (Sec. 3.3).
MDS_DIMENSION_LIMIT = 4

_ROW_BASE_SIZE = 16
_FIELD_SIZE = 12


def _is_scalar(value: Any) -> bool:
    return isinstance(value, (int, float, str, bool))


class GMRRow:
    """One GMR tuple: arguments, per-function results and validity bits.

    ``error`` refines invalidity: an entry whose *last rematerialization
    attempt failed* under the execution guard carries ``valid=False,
    error=True`` — the ERROR validity state.  Error entries never
    participate in retrieval (they are invalid) and the flag clears on
    the next successful :meth:`GMRStore.set_result`.
    """

    __slots__ = ("args", "results", "valid", "error", "support", "placement")

    def __init__(self, args: tuple, fct_count: int, placement: Placement) -> None:
        self.args = args
        self.results: list[Any] = [None] * fct_count
        self.valid: list[bool] = [False] * fct_count
        self.error: list[bool] = [False] * fct_count
        #: Per-column support state of the delta maintenance engine
        #: (``None`` until a self-maintainable aggregate patches the
        #: row): ``{fct_index: state_dict}``.  Derived from the result
        #: — any transition of the result (set/invalidate/error) drops
        #: the column's support so it can never go stale.
        self.support: dict[int, dict] | None = None
        self.placement = placement

    def __repr__(self) -> str:
        cells = ", ".join(
            f"{result!r}/{'E' if err else ('T' if flag else 'F')}"
            for result, flag, err in zip(self.results, self.valid, self.error)
        )
        return f"GMRRow({self.args!r}: {cells})"


class GMRStore:
    """Row storage plus access paths for one GMR."""

    #: Physical layout tag; persisted per GMR so checkpoints reopen with
    #: the layout they were written under.
    layout = "rows"

    def __init__(
        self,
        name: str,
        arg_count: int,
        fct_count: int,
        page_store: PageStore | None = None,
        buffer: BufferManager | None = None,
        *,
        storage: str = "auto",
        row_segment: str | None = None,
    ) -> None:
        """``row_segment`` overrides where rows are placed.

        By default rows cluster in a private segment ("separate caching",
        the choice the paper justifies via Jhingran's CS-vs-CT analysis);
        passing an object type's segment stores results *near the
        argument objects* instead (the CT alternative) — rows then share
        pages with objects, which removes the clustering benefit for
        result scans.  Used by the storage ablation benchmark.
        """
        if storage not in ("auto", "mds", "columns"):
            raise ValueError(f"unknown storage mode {storage!r}")
        self.name = name
        self.arg_count = arg_count
        self.fct_count = fct_count
        self.row_segment = row_segment or f"gmr:{name}"
        self._pages = page_store
        self._buffer = buffer
        #: The GMR-entry lock table (a
        #: :class:`~repro.concurrency.locks.StripedRWLock` keyed by
        #: ``args``), attached by the manager when the object base runs
        #: with ``workers > 0``.  ``None`` (the default) keeps every
        #: mutator lock-free — the single-threaded path.  Sec. 4.1:
        #: maintenance locks the GMR entry, never the argument objects.
        self.locks = None
        self._rows: dict[tuple, GMRRow] = {}
        self._invalid: list[set[tuple]] = [set() for _ in range(fct_count)]
        self._errors: list[set[tuple]] = [set() for _ in range(fct_count)]
        if storage == "auto":
            storage = (
                "mds" if arg_count + fct_count <= MDS_DIMENSION_LIMIT else "columns"
            )
        self.storage = storage
        self._mds: GridFile | None = None
        self._columns: list[BPlusTree | None] = [None] * fct_count
        if storage == "mds":
            self._mds = GridFile(
                arg_count + fct_count,
                page_store,
                buffer,
                segment=f"gmr:{name}:mds",
            )

    # -- plumbing --------------------------------------------------------------

    def _entry_write(self, args: tuple):
        """Write-side context of ``args``'s entry lock (no-op when the
        lock table is absent, i.e. single-threaded mode)."""
        locks = self.locks
        return _NULL_CTX if locks is None else locks.write(args)

    def _touch_row(self, row: GMRRow, *, write: bool = False) -> None:
        if self._buffer is not None:
            self._buffer.touch(row.placement.page_id, write=write)

    def _column(self, fct_index: int) -> BPlusTree:
        index = self._columns[fct_index]
        if index is None:
            index = BPlusTree(
                self._pages,
                self._buffer,
                segment=f"gmr:{self.name}:f{fct_index}",
            )
            for row in self._rows.values():
                if row.valid[fct_index] and _is_scalar(row.results[fct_index]):
                    index.insert(row.results[fct_index], row.args)
            self._columns[fct_index] = index
        return index

    def _mds_point(self, row: GMRRow) -> tuple | None:
        """The grid-file point of a fully valid, all-scalar row."""
        if not all(row.valid):
            return None
        if not all(_is_scalar(result) for result in row.results):
            return None
        return row.args + tuple(row.results)

    def _index_remove(self, row: GMRRow, fct_index: int, *, had_all: bool) -> None:
        old = row.results[fct_index]
        if self.storage == "columns":
            index = self._columns[fct_index]
            if index is not None and _is_scalar(old):
                index.remove(old, row.args)
        elif had_all and self._mds is not None:
            point = row.args + tuple(row.results)
            if all(_is_scalar(result) for result in row.results):
                self._mds.remove(point, row.args)

    def _index_insert(self, row: GMRRow, fct_index: int) -> None:
        new = row.results[fct_index]
        if self.storage == "columns":
            index = self._columns[fct_index]
            if index is not None and _is_scalar(new):
                index.insert(new, row.args)
        elif self._mds is not None:
            point = self._mds_point(row)
            if point is not None:
                self._mds.insert(point, row.args)

    # -- row lifecycle --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def get(self, args: tuple) -> GMRRow | None:
        row = self._rows.get(args)
        if row is not None:
            self._touch_row(row)
        return row

    def ensure_row(self, args: tuple) -> GMRRow:
        with self._entry_write(args):
            return self._ensure_row_impl(args)

    def _ensure_row_impl(self, args: tuple) -> GMRRow:
        row = self._rows.get(args)
        if row is None:
            placement = (
                self._pages.place(
                    self.row_segment,
                    _ROW_BASE_SIZE + _FIELD_SIZE * (self.arg_count + self.fct_count),
                )
                if self._pages is not None
                else Placement(-1, 0)
            )
            row = GMRRow(args, self.fct_count, placement)
            self._rows[args] = row
            for fct_index in range(self.fct_count):
                self._invalid[fct_index].add(args)
        self._touch_row(row, write=True)
        return row

    def remove_row(self, args: tuple) -> bool:
        with self._entry_write(args):
            row = self._rows.pop(args, None)
            if row is None:
                return False
            self._touch_row(row, write=True)
            had_all = all(row.valid)
            for fct_index in range(self.fct_count):
                if row.valid[fct_index]:
                    self._index_remove(row, fct_index, had_all=had_all)
                    # In MDS mode the whole point disappears with the
                    # first removal; stop after it.
                    if self.storage == "mds" and had_all:
                        break
                self._invalid[fct_index].discard(args)
                self._errors[fct_index].discard(args)
            if self._pages is not None and row.placement.page_id >= 0:
                self._pages.remove(row.placement)
            return True

    # -- result maintenance ------------------------------------------------------------

    def set_result(self, args: tuple, fct_index: int, value: Any) -> GMRRow:
        """Store a freshly (re-)materialized result and mark it valid."""
        with self._entry_write(args):
            row = self._ensure_row_impl(args)
            had_all = all(row.valid)
            if row.valid[fct_index]:
                self._index_remove(row, fct_index, had_all=had_all)
            elif self.storage == "mds" and had_all:
                pass  # cannot happen: invalid flag contradicts had_all
            elif self.storage == "mds" and self._mds is not None:
                # The row was not fully valid, so it is not in the MDS
                # yet; nothing to remove.
                pass
            row.results[fct_index] = value
            row.valid[fct_index] = True
            if row.support:
                row.support.pop(fct_index, None)
            self._invalid[fct_index].discard(args)
            if row.error[fct_index]:
                row.error[fct_index] = False
                self._errors[fct_index].discard(args)
            self._index_insert(row, fct_index)
            self._touch_row(row, write=True)
            return row

    def mark_invalid(self, args: tuple, fct_index: int) -> bool:
        """Set ``V_fct := false`` (lazy rematerialization, Sec. 4.1)."""
        with self._entry_write(args):
            row = self._rows.get(args)
            if row is None or not row.valid[fct_index]:
                return False
            had_all = all(row.valid)
            self._index_remove(row, fct_index, had_all=had_all)
            row.valid[fct_index] = False
            if row.support:
                row.support.pop(fct_index, None)
            self._invalid[fct_index].add(args)
            self._touch_row(row, write=True)
            return True

    def mark_error(self, args: tuple, fct_index: int) -> bool:
        """Demote the entry to the ERROR validity state.

        ERROR is invalid-plus-diagnosis: the validity bit drops (so the
        entry leaves every access path, exactly like
        :meth:`mark_invalid`) and the error flag records that the last
        rematerialization attempt *failed* rather than merely being
        deferred.  Returns True when anything changed.
        """
        with self._entry_write(args):
            row = self._rows.get(args)
            if row is None:
                return False
            changed = False
            if row.valid[fct_index]:
                had_all = all(row.valid)
                self._index_remove(row, fct_index, had_all=had_all)
                row.valid[fct_index] = False
                self._invalid[fct_index].add(args)
                changed = True
            if not row.error[fct_index]:
                row.error[fct_index] = True
                self._errors[fct_index].add(args)
                changed = True
            if row.support:
                row.support.pop(fct_index, None)
            self._touch_row(row, write=True)
            return changed

    def support_state(self, args: tuple, fct_index: int) -> dict | None:
        """The delta engine's support state for one entry column."""
        row = self._rows.get(args)
        if row is None or not row.support:
            return None
        return row.support.get(fct_index)

    def set_support_state(
        self, args: tuple, fct_index: int, state: dict | None
    ) -> None:
        """Attach (or with ``None`` drop) one column's support state.

        Only meaningful for a *valid* entry — the result transitions in
        :meth:`set_result` / :meth:`mark_invalid` / :meth:`mark_error`
        clear it, so callers set support immediately after storing the
        patched result.
        """
        with self._entry_write(args):
            row = self._rows.get(args)
            if row is None:
                return
            if state is None:
                if row.support:
                    row.support.pop(fct_index, None)
                return
            if row.support is None:
                row.support = {}
            row.support[fct_index] = state
            self._touch_row(row, write=True)

    # -- cell probes ----------------------------------------------------------------

    def probe(self, args: tuple, fct_index: int) -> tuple[Any, bool, bool]:
        """One function cell: ``(result, valid, exists)``.

        The forward-query hot path: callers need exactly one column of
        one entry, not a whole row.  The row layout answers it through
        :meth:`get` (same page touch as before); the columnar layout
        overrides it with a direct array probe.
        """
        row = self.get(args)
        if row is None:
            return None, False, False
        return row.results[fct_index], row.valid[fct_index], True

    def entry_cell(self, args: tuple, fct_index: int) -> tuple[Any, bool, bool, bool]:
        """Like :meth:`probe` but with the ERROR flag:
        ``(result, valid, error, exists)`` — the delta engine's view of
        a cell."""
        row = self.get(args)
        if row is None:
            return None, False, False, False
        return (
            row.results[fct_index],
            row.valid[fct_index],
            row.error[fct_index],
            True,
        )

    def lookup_many(
        self, args_list: Iterable[tuple], fct_index: int
    ) -> list[tuple[Any, bool, bool]]:
        """Vectorized :meth:`probe` — one ``(result, valid, exists)``
        triple per argument tuple, in input order."""
        return [self.probe(args, fct_index) for args in args_list]

    def mark_invalid_many(
        self, fct_index: int, args_iter: Iterable[tuple]
    ) -> list[tuple]:
        """Batch :meth:`mark_invalid`; returns the args that transitioned.

        The invalidation wave marks every affected entry of one function
        in a row — the row layout keeps the per-entry loop (and its
        per-entry locking), the columnar layout resolves the batch in
        one pass over the flag arrays.
        """
        return [args for args in args_iter if self.mark_invalid(args, fct_index)]

    def invalid_args(self, fct_index: int) -> set[tuple]:
        return set(self._invalid[fct_index])

    def has_invalid(self, fct_index: int) -> bool:
        return bool(self._invalid[fct_index])

    def error_args(self, fct_index: int) -> set[tuple]:
        return set(self._errors[fct_index])

    def has_errors(self, fct_index: int) -> bool:
        return bool(self._errors[fct_index])

    # -- retrieval -----------------------------------------------------------------

    def rows(self) -> Iterator[GMRRow]:
        for row in self._rows.values():
            self._touch_row(row)
            yield row

    def args(self) -> list[tuple]:
        return list(self._rows)

    def backward(
        self,
        fct_index: int,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, tuple]]:
        """Yield ``(result, args)`` for valid results within the range.

        Uses the MDS or the per-column B+ tree; falls back to a row scan
        for non-scalar results.
        """
        if self.storage == "mds" and self._mds is not None:
            conditions: list[Any] = [None] * (self.arg_count + self.fct_count)
            conditions[self.arg_count + fct_index] = (low, high)
            for point, args in self._mds.query(conditions):
                value = point[self.arg_count + fct_index]
                if not include_low and low is not None and value == low:
                    continue
                if not include_high and high is not None and value == high:
                    continue
                row = self._rows.get(args)
                if row is not None and row.valid[fct_index]:
                    yield value, args
            # Rows not fully valid are not in the MDS; surface the valid
            # results for *this* function among them by a residual scan.
            for args in self._partial_rows(fct_index):
                row = self._rows[args]
                value = row.results[fct_index]
                if not _in_range(
                    value, low, high, include_low=include_low, include_high=include_high
                ):
                    continue
                self._touch_row(row)
                yield value, args
            return
        index = self._column(fct_index)
        yield from index.range_scan(
            low, high, include_low=include_low, include_high=include_high
        )

    def _partial_rows(self, fct_index: int) -> list[tuple]:
        """Args of rows valid for ``fct_index`` but absent from the MDS."""
        result = []
        for args, row in self._rows.items():
            if row.valid[fct_index] and self._mds_point(row) is None:
                result.append(args)
        return result


#: Columnar key cells hold one interned id per argument (a machine word).
_KEY_CELL_SIZE = 8


class ColumnarGMRStore(GMRStore):
    """Struct-of-arrays GMR storage (``layout="columnar"``).

    The row layout keeps one Python object per entry; every probe is a
    dict hop plus attribute reads, and every entry occupies a full
    ``_ROW_BASE_SIZE + (n+m) * _FIELD_SIZE`` row on its page.  The
    columnar layout shreds the extension into parallel arrays:

    * ``_arg_ids`` — one ``array('q')`` per argument position holding
      interned ids (:data:`repro.util.interning.INTERN`), placed as
      8-byte cells in a dedicated key segment;
    * ``_res`` / ``_valid`` / ``_err`` — per-function result lists and
      validity/ERROR flag bytearrays, result cells placed per column;
    * ``_supports`` — per-slot support-state dicts of the delta engine.

    A *slot* is an index into all arrays at once; ``_slots`` maps the
    argument tuple to its slot and freed slots are recycled.  The public
    API is the :class:`GMRStore` surface — callers that ask for rows get
    immutable snapshot views (plain :class:`GMRRow` instances); the hot
    paths (:meth:`probe`, :meth:`entry_cell`, :meth:`lookup_many`,
    :meth:`mark_invalid_many`) never build a view at all.

    Why it wins: a forward probe touches one densely packed result-cell
    page (hundreds of cells per 4 KiB page) instead of a row page tens
    of entries wide, and reads two array cells instead of constructing
    and picking apart a row object.  State-transition semantics — the
    validity lattice, ERROR refinement, support-state drops, access-path
    maintenance, entry locking — mirror the row layout operation for
    operation, which the layout-differential suite and the fuzz matrix
    hold to *identical* extensions.
    """

    layout = "columnar"

    def __init__(
        self,
        name: str,
        arg_count: int,
        fct_count: int,
        page_store: PageStore | None = None,
        buffer: BufferManager | None = None,
        *,
        storage: str = "auto",
        row_segment: str | None = None,
    ) -> None:
        super().__init__(
            name,
            arg_count,
            fct_count,
            page_store,
            buffer,
            storage=storage,
            row_segment=row_segment,
        )
        # Imported here, not at module top: repro.gom pulls in the core
        # package, which imports this module.
        from repro.util.interning import INTERN

        del self._rows  # the row dict must never be touched in this layout
        self._intern = INTERN.intern
        self.key_segment = f"{self.row_segment}:keys"
        self._slots: dict[tuple, int] = {}
        self._free: list[int] = []
        self._slot_args: list[tuple | None] = []
        self._arg_ids: list[array] = [array("q") for _ in range(arg_count)]
        self._res: list[list[Any]] = [[] for _ in range(fct_count)]
        self._valid_col: list[bytearray] = [bytearray() for _ in range(fct_count)]
        self._err_col: list[bytearray] = [bytearray() for _ in range(fct_count)]
        self._supports: list[dict[int, dict] | None] = []
        self._key_place: list[Placement] = []
        self._cell_place: list[list[Placement]] = [[] for _ in range(fct_count)]

    # -- plumbing --------------------------------------------------------------

    def _touch_key(self, slot: int, *, write: bool = False) -> None:
        if self._buffer is not None:
            self._buffer.touch(self._key_place[slot].page_id, write=write)

    def _touch_cell(self, slot: int, fct_index: int, *, write: bool = False) -> None:
        if self._buffer is not None:
            self._buffer.touch(self._cell_place[fct_index][slot].page_id, write=write)

    def _place(self, segment: str, size: int) -> Placement:
        if self._pages is None:
            return Placement(-1, 0)
        return self._pages.place(segment, size)

    def _view(self, args: tuple, slot: int) -> GMRRow:
        """An immutable row snapshot for API compatibility.

        Nothing outside this module mutates row attributes (the store
        methods are the only writers), so handing out copies of the cell
        values is safe; the support dict is shared live, like the row
        layout's.
        """
        row = GMRRow.__new__(GMRRow)
        row.args = args
        row.results = [col[slot] for col in self._res]
        row.valid = [bool(col[slot]) for col in self._valid_col]
        row.error = [bool(col[slot]) for col in self._err_col]
        row.support = self._supports[slot]
        row.placement = self._key_place[slot]
        return row

    def _all_valid(self, slot: int) -> bool:
        return all(col[slot] for col in self._valid_col)

    def _results_of(self, slot: int) -> tuple:
        return tuple(col[slot] for col in self._res)

    def _column(self, fct_index: int) -> BPlusTree:
        index = self._columns[fct_index]
        if index is None:
            index = BPlusTree(
                self._pages,
                self._buffer,
                segment=f"gmr:{self.name}:f{fct_index}",
            )
            valid = self._valid_col[fct_index]
            res = self._res[fct_index]
            for args, slot in self._slots.items():
                if valid[slot] and _is_scalar(res[slot]):
                    index.insert(res[slot], args)
            self._columns[fct_index] = index
        return index

    def _mds_point_of(self, slot: int) -> tuple | None:
        """The grid-file point of a fully valid, all-scalar slot."""
        if not self._all_valid(slot):
            return None
        results = self._results_of(slot)
        if not all(_is_scalar(result) for result in results):
            return None
        return self._slot_args[slot] + results

    def _index_remove_slot(self, slot: int, fct_index: int, *, had_all: bool) -> None:
        old = self._res[fct_index][slot]
        args = self._slot_args[slot]
        if self.storage == "columns":
            index = self._columns[fct_index]
            if index is not None and _is_scalar(old):
                index.remove(old, args)
        elif had_all and self._mds is not None:
            results = self._results_of(slot)
            if all(_is_scalar(result) for result in results):
                self._mds.remove(args + results, args)

    def _index_insert_slot(self, slot: int, fct_index: int) -> None:
        new = self._res[fct_index][slot]
        args = self._slot_args[slot]
        if self.storage == "columns":
            index = self._columns[fct_index]
            if index is not None and _is_scalar(new):
                index.insert(new, args)
        elif self._mds is not None:
            point = self._mds_point_of(slot)
            if point is not None:
                self._mds.insert(point, args)

    # -- row lifecycle --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slots)

    def get(self, args: tuple) -> GMRRow | None:
        slot = self._slots.get(args)
        if slot is None:
            return None
        self._touch_key(slot)
        return self._view(args, slot)

    def _alloc_slot(self, args: tuple) -> int:
        key_place = self._place(
            self.key_segment, _KEY_CELL_SIZE * max(1, self.arg_count)
        )
        if self._free:
            slot = self._free.pop()
            self._slot_args[slot] = args
            self._supports[slot] = None
            self._key_place[slot] = key_place
            for position, arg in enumerate(args):
                self._arg_ids[position][slot] = self._intern(arg)
            for fct_index in range(self.fct_count):
                self._res[fct_index][slot] = None
                self._valid_col[fct_index][slot] = 0
                self._err_col[fct_index][slot] = 0
                self._cell_place[fct_index][slot] = self._place(
                    f"gmr:{self.name}:c{fct_index}", _FIELD_SIZE
                )
        else:
            slot = len(self._slot_args)
            self._slot_args.append(args)
            self._supports.append(None)
            self._key_place.append(key_place)
            for position, arg in enumerate(args):
                self._arg_ids[position].append(self._intern(arg))
            for fct_index in range(self.fct_count):
                self._res[fct_index].append(None)
                self._valid_col[fct_index].append(0)
                self._err_col[fct_index].append(0)
                self._cell_place[fct_index].append(
                    self._place(f"gmr:{self.name}:c{fct_index}", _FIELD_SIZE)
                )
        self._slots[args] = slot
        for fct_index in range(self.fct_count):
            self._invalid[fct_index].add(args)
        return slot

    def ensure_row(self, args: tuple) -> GMRRow:
        with self._entry_write(args):
            return self._ensure_row_impl(args)

    def _ensure_row_impl(self, args: tuple) -> GMRRow:
        slot = self._slots.get(args)
        if slot is None:
            slot = self._alloc_slot(args)
        self._touch_key(slot, write=True)
        return self._view(args, slot)

    def remove_row(self, args: tuple) -> bool:
        with self._entry_write(args):
            slot = self._slots.pop(args, None)
            if slot is None:
                return False
            self._touch_key(slot, write=True)
            had_all = self._all_valid(slot)
            for fct_index in range(self.fct_count):
                if self._valid_col[fct_index][slot]:
                    self._index_remove_slot(slot, fct_index, had_all=had_all)
                    # In MDS mode the whole point disappears with the
                    # first removal; stop after it (fully valid entries
                    # are in no invalid/error set, so nothing is missed).
                    if self.storage == "mds" and had_all:
                        break
                self._invalid[fct_index].discard(args)
                self._errors[fct_index].discard(args)
            if self._pages is not None:
                if self._key_place[slot].page_id >= 0:
                    self._pages.remove(self._key_place[slot])
                for fct_index in range(self.fct_count):
                    cell = self._cell_place[fct_index][slot]
                    if cell.page_id >= 0:
                        self._pages.remove(cell)
            self._slot_args[slot] = None
            self._supports[slot] = None
            for fct_index in range(self.fct_count):
                self._res[fct_index][slot] = None
                self._valid_col[fct_index][slot] = 0
                self._err_col[fct_index][slot] = 0
            self._free.append(slot)
            return True

    # -- result maintenance ------------------------------------------------------------

    def set_result(self, args: tuple, fct_index: int, value: Any) -> GMRRow:
        with self._entry_write(args):
            slot = self._slots.get(args)
            if slot is None:
                slot = self._alloc_slot(args)
                self._touch_key(slot, write=True)
            valid = self._valid_col[fct_index]
            if valid[slot]:
                self._index_remove_slot(slot, fct_index, had_all=self._all_valid(slot))
            self._res[fct_index][slot] = value
            valid[slot] = 1
            support = self._supports[slot]
            if support:
                support.pop(fct_index, None)
            self._invalid[fct_index].discard(args)
            if self._err_col[fct_index][slot]:
                self._err_col[fct_index][slot] = 0
                self._errors[fct_index].discard(args)
            self._index_insert_slot(slot, fct_index)
            self._touch_cell(slot, fct_index, write=True)
            return self._view(args, slot)

    def mark_invalid(self, args: tuple, fct_index: int) -> bool:
        with self._entry_write(args):
            return self._mark_invalid_slot(args, fct_index)

    def _mark_invalid_slot(self, args: tuple, fct_index: int) -> bool:
        slot = self._slots.get(args)
        if slot is None or not self._valid_col[fct_index][slot]:
            return False
        self._index_remove_slot(slot, fct_index, had_all=self._all_valid(slot))
        self._valid_col[fct_index][slot] = 0
        support = self._supports[slot]
        if support:
            support.pop(fct_index, None)
        self._invalid[fct_index].add(args)
        self._touch_cell(slot, fct_index, write=True)
        return True

    def mark_error(self, args: tuple, fct_index: int) -> bool:
        with self._entry_write(args):
            slot = self._slots.get(args)
            if slot is None:
                return False
            changed = False
            if self._valid_col[fct_index][slot]:
                self._index_remove_slot(slot, fct_index, had_all=self._all_valid(slot))
                self._valid_col[fct_index][slot] = 0
                self._invalid[fct_index].add(args)
                changed = True
            if not self._err_col[fct_index][slot]:
                self._err_col[fct_index][slot] = 1
                self._errors[fct_index].add(args)
                changed = True
            support = self._supports[slot]
            if support:
                support.pop(fct_index, None)
            self._touch_cell(slot, fct_index, write=True)
            return changed

    def support_state(self, args: tuple, fct_index: int) -> dict | None:
        slot = self._slots.get(args)
        if slot is None:
            return None
        support = self._supports[slot]
        if not support:
            return None
        return support.get(fct_index)

    def set_support_state(
        self, args: tuple, fct_index: int, state: dict | None
    ) -> None:
        with self._entry_write(args):
            slot = self._slots.get(args)
            if slot is None:
                return
            if state is None:
                support = self._supports[slot]
                if support:
                    support.pop(fct_index, None)
                return
            support = self._supports[slot]
            if support is None:
                support = {}
                self._supports[slot] = support
            support[fct_index] = state
            self._touch_cell(slot, fct_index, write=True)

    # -- cell probes ----------------------------------------------------------------

    def probe(self, args: tuple, fct_index: int) -> tuple[Any, bool, bool]:
        slot = self._slots.get(args)
        if slot is None:
            return None, False, False
        self._touch_cell(slot, fct_index)
        return (
            self._res[fct_index][slot],
            bool(self._valid_col[fct_index][slot]),
            True,
        )

    def entry_cell(self, args: tuple, fct_index: int) -> tuple[Any, bool, bool, bool]:
        slot = self._slots.get(args)
        if slot is None:
            return None, False, False, False
        self._touch_cell(slot, fct_index)
        return (
            self._res[fct_index][slot],
            bool(self._valid_col[fct_index][slot]),
            bool(self._err_col[fct_index][slot]),
            True,
        )

    def lookup_many(
        self, args_list: Iterable[tuple], fct_index: int
    ) -> list[tuple[Any, bool, bool]]:
        slots = self._slots
        res = self._res[fct_index]
        valid = self._valid_col[fct_index]
        out: list[tuple[Any, bool, bool]] = []
        for args in args_list:
            slot = slots.get(args)
            if slot is None:
                out.append((None, False, False))
            else:
                self._touch_cell(slot, fct_index)
                out.append((res[slot], bool(valid[slot]), True))
        return out

    def mark_invalid_many(
        self, fct_index: int, args_iter: Iterable[tuple]
    ) -> list[tuple]:
        changed: list[tuple] = []
        for args in args_iter:
            with self._entry_write(args):
                if self._mark_invalid_slot(args, fct_index):
                    changed.append(args)
        return changed

    # -- retrieval -----------------------------------------------------------------

    def rows(self) -> Iterator[GMRRow]:
        for args, slot in self._slots.items():
            self._touch_key(slot)
            yield self._view(args, slot)

    def args(self) -> list[tuple]:
        return list(self._slots)

    def backward(
        self,
        fct_index: int,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, tuple]]:
        if self.storage == "mds" and self._mds is not None:
            conditions: list[Any] = [None] * (self.arg_count + self.fct_count)
            conditions[self.arg_count + fct_index] = (low, high)
            valid = self._valid_col[fct_index]
            for point, args in self._mds.query(conditions):
                value = point[self.arg_count + fct_index]
                if not include_low and low is not None and value == low:
                    continue
                if not include_high and high is not None and value == high:
                    continue
                slot = self._slots.get(args)
                if slot is not None and valid[slot]:
                    yield value, args
            for args in self._partial_rows(fct_index):
                slot = self._slots[args]
                value = self._res[fct_index][slot]
                if not _in_range(
                    value, low, high, include_low=include_low, include_high=include_high
                ):
                    continue
                self._touch_cell(slot, fct_index)
                yield value, args
            return
        index = self._column(fct_index)
        yield from index.range_scan(
            low, high, include_low=include_low, include_high=include_high
        )

    def _partial_rows(self, fct_index: int) -> list[tuple]:
        valid = self._valid_col[fct_index]
        result = []
        for args, slot in self._slots.items():
            if valid[slot] and self._mds_point_of(slot) is None:
                result.append(args)
        return result


def _in_range(
    value: Any,
    low: Any,
    high: Any,
    *,
    include_low: bool,
    include_high: bool,
) -> bool:
    if not _is_scalar(value):
        return False
    if low is not None and (value < low or (not include_low and value == low)):
        return False
    if high is not None and (value > high or (not include_high and value == high)):
        return False
    return True


#: Public alias: scalar range membership (the manager's degraded
#: backward completion filters directly-evaluated results with it).
in_range = _in_range
