"""A B+ tree index with duplicate support and range scans.

Used by the GMR store as the conventional, one-dimensional index over a
single GMR column (Sec. 3.3: for GMRs of higher arity the grid file is
not suitable, so per-column indexes are chosen "according to the expected
query mix").  Also backs attribute indexes such as the ``CuboidID`` index
the paper's forward-query benchmark relies on.

Keys may be any mutually comparable values; duplicates are handled by
keeping a list of values per key inside the leaves.  Every node visit
touches the node's simulated page so index traversals contribute to the
I/O accounting.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections.abc import Iterator
from typing import Any

from repro.storage.pages import BufferManager, PageStore

_DEFAULT_ORDER = 64


class _Node:
    __slots__ = ("keys", "page_id")

    def __init__(self, page_id: int) -> None:
        self.keys: list[Any] = []
        self.page_id = page_id


class _Leaf(_Node):
    __slots__ = ("values", "next_leaf", "prev_leaf")

    def __init__(self, page_id: int) -> None:
        super().__init__(page_id)
        self.values: list[list[Any]] = []
        self.next_leaf: _Leaf | None = None
        self.prev_leaf: _Leaf | None = None


class _Inner(_Node):
    __slots__ = ("children",)

    def __init__(self, page_id: int) -> None:
        super().__init__(page_id)
        self.children: list[_Node] = []


class BPlusTree:
    """B+ tree mapping comparable keys to (possibly multiple) values.

    Parameters
    ----------
    page_store, buffer:
        Optional simulated-storage hooks.  When given, every node access
        touches the node's page so searches and scans are charged I/O.
    order:
        Maximum number of keys per node (minimum 3).
    """

    def __init__(
        self,
        page_store: PageStore | None = None,
        buffer: BufferManager | None = None,
        *,
        order: int = _DEFAULT_ORDER,
        segment: str = "btree",
    ) -> None:
        if order < 3:
            raise ValueError("B+ tree order must be at least 3")
        self.order = order
        self._pages = page_store
        self._buffer = buffer
        self._segment = segment
        self._size = 0
        self._root: _Node = self._new_leaf()

    # -- node/page plumbing -------------------------------------------------

    def _new_page_id(self) -> int:
        if self._pages is None:
            return -1
        return self._pages.place(self._segment, self._pages.page_size).page_id

    def _new_leaf(self) -> _Leaf:
        return _Leaf(self._new_page_id())

    def _new_inner(self) -> _Inner:
        return _Inner(self._new_page_id())

    def _touch(self, node: _Node, *, write: bool = False) -> None:
        if self._buffer is not None and node.page_id >= 0:
            self._buffer.touch(node.page_id, write=write)

    # -- public API ----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        height = 1
        node = self._root
        while isinstance(node, _Inner):
            height += 1
            node = node.children[0]
        return height

    def insert(self, key: Any, value: Any) -> None:
        """Insert a (key, value) entry; duplicate keys are allowed."""
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = self._new_inner()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def remove(self, key: Any, value: Any) -> bool:
        """Remove one (key, value) entry; returns False if absent."""
        removed = self._remove(self._root, key, value)
        if removed:
            self._size -= 1
            if isinstance(self._root, _Inner) and len(self._root.children) == 1:
                self._root = self._root.children[0]
        return removed

    def search(self, key: Any) -> list[Any]:
        """Return all values stored under ``key`` (empty list if none)."""
        leaf = self._find_leaf(key)
        index = bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def contains(self, key: Any, value: Any) -> bool:
        return value in self.search(key)

    def range_scan(
        self,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, Any]]:
        """Yield (key, value) pairs with low <= key <= high, in key order.

        ``None`` bounds are open (scan from the smallest / to the largest
        key).  Exclusive bounds via ``include_low=False`` etc.
        """
        if low is None:
            leaf: _Leaf | None = self._leftmost_leaf()
            index = 0
        else:
            leaf = self._find_leaf(low)
            if include_low:
                index = bisect_left(leaf.keys, low)
            else:
                index = bisect_right(leaf.keys, low)
        while leaf is not None:
            for position in range(index, len(leaf.keys)):
                key = leaf.keys[position]
                if high is not None:
                    if include_high:
                        if key > high:
                            return
                    elif key >= high:
                        return
                for value in leaf.values[position]:
                    yield key, value
            leaf = leaf.next_leaf
            if leaf is not None:
                self._touch(leaf)
            index = 0

    def items(self) -> Iterator[tuple[Any, Any]]:
        return self.range_scan()

    def keys(self) -> Iterator[Any]:
        seen_leaf = self._leftmost_leaf()
        while seen_leaf is not None:
            yield from seen_leaf.keys
            seen_leaf = seen_leaf.next_leaf

    # -- internals -----------------------------------------------------------

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        self._touch(node)
        while isinstance(node, _Inner):
            node = node.children[0]
            self._touch(node)
        return node  # type: ignore[return-value]

    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        self._touch(node)
        while isinstance(node, _Inner):
            index = bisect_right(node.keys, key)
            node = node.children[index]
            self._touch(node)
        return node  # type: ignore[return-value]

    def _insert(
        self, node: _Node, key: Any, value: Any
    ) -> tuple[Any, _Node] | None:
        self._touch(node, write=True)
        if isinstance(node, _Leaf):
            index = bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].append(value)
                return None
            node.keys.insert(index, key)
            node.values.insert(index, [value])
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        assert isinstance(node, _Inner)
        index = bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        insort_position = bisect_right(node.keys, separator)
        node.keys.insert(insort_position, separator)
        node.children.insert(insort_position + 1, right)
        if len(node.keys) > self.order:
            return self._split_inner(node)
        return None

    def _split_leaf(self, leaf: _Leaf) -> tuple[Any, _Leaf]:
        middle = len(leaf.keys) // 2
        right = self._new_leaf()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        right.next_leaf = leaf.next_leaf
        if right.next_leaf is not None:
            right.next_leaf.prev_leaf = right
        right.prev_leaf = leaf
        leaf.next_leaf = right
        self._touch(right, write=True)
        return right.keys[0], right

    def _split_inner(self, inner: _Inner) -> tuple[Any, _Inner]:
        middle = len(inner.keys) // 2
        separator = inner.keys[middle]
        right = self._new_inner()
        right.keys = inner.keys[middle + 1 :]
        right.children = inner.children[middle + 1 :]
        inner.keys = inner.keys[:middle]
        inner.children = inner.children[: middle + 1]
        self._touch(right, write=True)
        return separator, right

    def _remove(self, node: _Node, key: Any, value: Any) -> bool:
        self._touch(node, write=True)
        if isinstance(node, _Leaf):
            index = bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                return False
            bucket = node.values[index]
            try:
                bucket.remove(value)
            except ValueError:
                return False
            if not bucket:
                node.keys.pop(index)
                node.values.pop(index)
            return True
        assert isinstance(node, _Inner)
        index = bisect_right(node.keys, key)
        child = node.children[index]
        removed = self._remove(child, key, value)
        if removed:
            self._rebalance(node, index)
        return removed

    def _min_keys(self) -> int:
        return self.order // 2

    def _rebalance(self, parent: _Inner, index: int) -> None:
        child = parent.children[index]
        if len(child.keys) >= self._min_keys():
            return
        if isinstance(child, _Leaf):
            self._rebalance_leaf(parent, index, child)
        else:
            self._rebalance_inner(parent, index, child)

    def _rebalance_leaf(self, parent: _Inner, index: int, leaf: _Leaf) -> None:
        minimum = self._min_keys()
        left = parent.children[index - 1] if index > 0 else None
        right = parent.children[index + 1] if index + 1 < len(parent.children) else None
        if isinstance(left, _Leaf) and len(left.keys) > minimum:
            leaf.keys.insert(0, left.keys.pop())
            leaf.values.insert(0, left.values.pop())
            parent.keys[index - 1] = leaf.keys[0]
            self._touch(left, write=True)
            return
        if isinstance(right, _Leaf) and len(right.keys) > minimum:
            leaf.keys.append(right.keys.pop(0))
            leaf.values.append(right.values.pop(0))
            parent.keys[index] = right.keys[0]
            self._touch(right, write=True)
            return
        if isinstance(left, _Leaf):
            self._merge_leaves(parent, index - 1, left, leaf)
        elif isinstance(right, _Leaf):
            self._merge_leaves(parent, index, leaf, right)

    def _merge_leaves(
        self, parent: _Inner, separator_index: int, left: _Leaf, right: _Leaf
    ) -> None:
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.next_leaf = right.next_leaf
        if left.next_leaf is not None:
            left.next_leaf.prev_leaf = left
        parent.keys.pop(separator_index)
        parent.children.pop(separator_index + 1)
        self._touch(left, write=True)
        if self._pages is not None and right.page_id >= 0:
            # Merged-away node's page is logically freed; the simulation
            # only needs to stop touching it, which it will.
            pass

    def _rebalance_inner(self, parent: _Inner, index: int, inner: _Inner) -> None:
        minimum = self._min_keys()
        left = parent.children[index - 1] if index > 0 else None
        right = parent.children[index + 1] if index + 1 < len(parent.children) else None
        if isinstance(left, _Inner) and len(left.keys) > minimum:
            inner.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            inner.children.insert(0, left.children.pop())
            self._touch(left, write=True)
            return
        if isinstance(right, _Inner) and len(right.keys) > minimum:
            inner.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            inner.children.append(right.children.pop(0))
            self._touch(right, write=True)
            return
        if isinstance(left, _Inner):
            left.keys.append(parent.keys[index - 1])
            left.keys.extend(inner.keys)
            left.children.extend(inner.children)
            parent.keys.pop(index - 1)
            parent.children.pop(index)
            self._touch(left, write=True)
        elif isinstance(right, _Inner):
            inner.keys.append(parent.keys[index])
            inner.keys.extend(right.keys)
            inner.children.extend(right.children)
            parent.keys.pop(index)
            parent.children.pop(index + 1)
            self._touch(inner, write=True)

    # -- validation (used by tests) -------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated."""
        self._check_node(self._root, is_root=True)
        keys = list(self.keys())
        assert keys == sorted(keys), "leaf chain out of order"

    def _check_node(self, node: _Node, *, is_root: bool) -> tuple[Any, Any] | None:
        if isinstance(node, _Leaf):
            assert node.keys == sorted(node.keys)
            assert len(node.keys) == len(node.values)
            if not is_root:
                assert len(node.keys) >= 1
            if node.keys:
                return node.keys[0], node.keys[-1]
            return None
        assert isinstance(node, _Inner)
        assert len(node.children) == len(node.keys) + 1
        assert node.keys == sorted(node.keys)
        if not is_root:
            assert len(node.keys) >= 1
        low = high = None
        for child_index, child in enumerate(node.children):
            child_range = self._check_node(child, is_root=False)
            if child_range is None:
                continue
            child_low, child_high = child_range
            if child_index > 0:
                assert child_low >= node.keys[child_index - 1]
            if child_index < len(node.keys):
                assert child_high <= node.keys[child_index] or (
                    child_high == node.keys[child_index]
                )
            if low is None:
                low = child_low
            high = child_high
        if low is None:
            return None
        return low, high
