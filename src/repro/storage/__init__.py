"""Storage substrate: simulated pages and buffer, plus index structures.

This package stands in for the EXODUS storage manager the paper's GOM
prototype was built on.  Objects, GMR rows and index nodes are placed on
simulated slotted pages; every access goes through an LRU buffer manager
that counts logical reads, hits and misses, so benchmarks can report
simulated I/O alongside wall-clock time.

Index structures implemented (Sec. 3.3 of the paper):

* :class:`~repro.storage.btree.BPlusTree` — conventional one-dimensional
  index with range scans (used per GMR column for higher arities),
* :class:`~repro.storage.hashindex.HashIndex` — exact-match index over
  argument combinations,
* :class:`~repro.storage.gridfile.GridFile` — the multi-dimensional
  storage structure (MDS) used when the GMR has few dimensions.
"""

from repro.storage.faultfs import (
    FaultInjectingFileSystem,
    FaultPlan,
    FaultyFile,
    FileSystem,
    InjectedIOError,
    REAL_FS,
    wal_file_factory,
)
from repro.storage.pages import BufferManager, CostModel, PageStore
from repro.storage.btree import BPlusTree
from repro.storage.hashindex import HashIndex
from repro.storage.gridfile import GridFile
from repro.storage.gmr_store import ColumnarGMRStore, GMRStore

__all__ = [
    "BufferManager",
    "CostModel",
    "FaultInjectingFileSystem",
    "FaultPlan",
    "FaultyFile",
    "FileSystem",
    "InjectedIOError",
    "PageStore",
    "REAL_FS",
    "wal_file_factory",
    "BPlusTree",
    "HashIndex",
    "GridFile",
    "GMRStore",
    "ColumnarGMRStore",
]
