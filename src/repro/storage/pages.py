"""Simulated slotted pages, page store and LRU buffer manager.

The paper's measurements were taken on GOM running over the EXODUS
storage manager with a deliberately small (600 kB) database buffer.  We
reproduce the *relative* cost structure with a simulated page store:

* every stored entity (object, GMR row, index node) is *placed* on a page
  when created; placement is append-style with a per-page byte budget;
* every read or write of an entity *touches* its page through a
  :class:`BufferManager` which keeps an LRU set of resident pages and
  counts hits and misses;
* a :class:`CostModel` converts the counters into a single simulated-cost
  figure (misses are the dominant term, mirroring disk I/O).

Nothing is actually serialized — the simulation only needs sizes and
identities to reproduce buffer behaviour.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import PageFullError

DEFAULT_PAGE_SIZE = 4096
#: Buffer capacity used in the paper's benchmarks: 600 kB of 4 kB pages.
PAPER_BUFFER_PAGES = (600 * 1024) // DEFAULT_PAGE_SIZE


@dataclass
class Page:
    """A fixed-capacity page holding opaque records by slot id."""

    page_id: int
    capacity: int
    used: int = 0
    slots: dict[int, int] = field(default_factory=dict)  # slot -> size
    _next_slot: int = 0

    def fits(self, size: int) -> bool:
        return self.used + size <= self.capacity

    def allocate(self, size: int) -> int:
        if not self.fits(size):
            raise PageFullError(
                f"page {self.page_id}: {size} bytes do not fit "
                f"({self.used}/{self.capacity} used)"
            )
        slot = self._next_slot
        self._next_slot += 1
        self.slots[slot] = size
        self.used += size
        return slot

    def free(self, slot: int) -> None:
        size = self.slots.pop(slot, 0)
        self.used -= size


@dataclass(frozen=True)
class Placement:
    """Where a record lives: page id plus slot within the page."""

    page_id: int
    slot: int


class PageStore:
    """Allocates pages and places records on them.

    Placement is *segmented*: callers pass a ``segment`` label (e.g. the
    object type name or a GMR name) and records of the same segment are
    packed together.  This mimics the clustering a real object manager
    would perform and is what makes GMR scans touch far fewer pages than
    object-graph traversals.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        self.page_size = page_size
        self._pages: dict[int, Page] = {}
        self._open_page: dict[str, int] = {}
        self._next_page_id = 0

    def __len__(self) -> int:
        return len(self._pages)

    def page(self, page_id: int) -> Page:
        return self._pages[page_id]

    def new_page(self) -> Page:
        page = Page(page_id=self._next_page_id, capacity=self.page_size)
        self._next_page_id += 1
        self._pages[page.page_id] = page
        return page

    def place(self, segment: str, size: int) -> Placement:
        """Place a record of ``size`` bytes in the given segment."""
        if size > self.page_size:
            # Oversized records get a chain of private pages; we model the
            # cost by placing them on a dedicated page (touching it counts
            # once, which is adequate for the simulation).
            page = self.new_page()
            page.capacity = size
            slot = page.allocate(size)
            return Placement(page.page_id, slot)
        open_id = self._open_page.get(segment)
        if open_id is not None:
            page = self._pages[open_id]
            if page.fits(size):
                return Placement(page.page_id, page.allocate(size))
        page = self.new_page()
        self._open_page[segment] = page.page_id
        return Placement(page.page_id, page.allocate(size))

    def remove(self, placement: Placement) -> None:
        page = self._pages.get(placement.page_id)
        if page is not None:
            page.free(placement.slot)


@dataclass
class CostModel:
    """Weights converting buffer counters into one simulated-cost number.

    The defaults make one physical page I/O (a buffer miss, or the
    write-back of a dirty page on eviction — a disk access in the paper's
    setup, 25 ms average on their DEC disk) four orders of magnitude
    more expensive than a buffered access, which is the regime the
    published curves were measured in.
    """

    miss_cost: float = 1.0
    hit_cost: float = 0.0001
    writeback_cost: float = 1.0

    def cost(self, stats: "BufferStats") -> float:
        return (
            stats.misses * self.miss_cost
            + stats.hits * self.hit_cost
            + stats.writebacks * self.writeback_cost
        )


@dataclass
class BufferStats:
    """Counters accumulated by the buffer manager.

    ``writebacks`` counts dirty pages written back on eviction (the
    physical write I/O); ``logical_writes`` counts write *accesses*
    (which merely dirty a resident page).
    """

    logical_reads: int = 0
    logical_writes: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    def snapshot(self) -> "BufferStats":
        return BufferStats(
            self.logical_reads,
            self.logical_writes,
            self.hits,
            self.misses,
            self.writebacks,
        )

    def delta(self, earlier: "BufferStats") -> "BufferStats":
        return BufferStats(
            self.logical_reads - earlier.logical_reads,
            self.logical_writes - earlier.logical_writes,
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.writebacks - earlier.writebacks,
        )


class BufferManager:
    """An LRU page buffer with hit/miss/write-back accounting.

    ``capacity`` is the number of resident pages; ``PAPER_BUFFER_PAGES``
    reproduces the paper's 600 kB configuration.  Writes dirty the
    resident page; the physical write happens (and is counted) when a
    dirty page is evicted.
    """

    def __init__(self, capacity: int = PAPER_BUFFER_PAGES) -> None:
        if capacity < 1:
            raise ValueError("buffer capacity must be at least one page")
        self.capacity = capacity
        self.stats = BufferStats()
        self._resident: OrderedDict[int, None] = OrderedDict()
        self._dirty: set[int] = set()

    def touch(self, page_id: int, *, write: bool = False) -> bool:
        """Access a page; returns True on a buffer hit."""
        stats = self.stats
        stats.logical_reads += 1
        if write:
            stats.logical_writes += 1
            self._dirty.add(page_id)
        resident = self._resident
        if page_id in resident:
            resident.move_to_end(page_id)
            stats.hits += 1
            return True
        stats.misses += 1
        resident[page_id] = None
        if len(resident) > self.capacity:
            evicted, _ = resident.popitem(last=False)
            if evicted in self._dirty:
                self._dirty.discard(evicted)
                stats.writebacks += 1
        return False

    def flush(self) -> int:
        """Write back every dirty resident page; returns the count."""
        count = len(self._dirty & set(self._resident))
        self.stats.writebacks += count
        self._dirty.clear()
        return count

    def evict_all(self) -> None:
        """Drop all resident pages without write-backs (cold start)."""
        self._resident.clear()
        self._dirty.clear()

    def reset_stats(self) -> None:
        self.stats = BufferStats()

    @property
    def resident_count(self) -> int:
        return len(self._resident)
