"""Stable argument-tuple hashing and the shard router.

The sharded materialization engine partitions its maintenance state by
``shard_of(args) % shards`` — each GMR entry's argument tuple picks the
shard that owns its scheduler queue, update lock and WAL segment.  Two
properties matter:

* **Stability across processes.**  The builtin ``hash()`` is
  per-process randomized for strings (PYTHONHASHSEED), so a WAL segment
  written before a crash must not be routed with it — recovery in a new
  process would look for records in the wrong segment.  ``stable_hash``
  therefore CRC32s a canonical byte encoding of the value, which is
  identical in every process and on every platform.

* **Rebalance-free routing.**  The shard of an argument tuple is a pure
  function of the tuple and the shard count — there is no routing
  table, hence nothing to rebalance or to keep consistent.  Changing
  ``shards`` between runs is a schema-level decision (checkpoint first;
  WAL segments are merged by global sequence number on recovery, so a
  recovered base can be reopened at a different shard count).

The canonical encoding tags every value with its type so ``1``,
``1.0``, ``True`` and ``"1"`` hash differently, and OIDs hash by their
integer identity (not their Python object identity).
"""

from __future__ import annotations

import zlib

from repro.gom.oid import Oid


class ShardCommitConflict(Exception):
    """A drain's rematerialization lost the write-epoch race.

    Raised (engine-internal, never user-visible) by the manager's
    rematerialization path when the object base's write epoch moved
    between the start of a background computation and its commit point:
    the result may have been computed from a half-applied update, so it
    is discarded and the entry is re-deferred onto its shard's
    scheduler.  The drain loop treats this exactly like a skipped entry.
    """


def _canonical(value: object) -> str:
    """A type-tagged, process-stable string form of ``value``."""
    if isinstance(value, Oid):
        return f"O{value.value}"
    if isinstance(value, bool):  # before int: bool is an int subclass
        return f"b{int(value)}"
    if isinstance(value, int):
        return f"i{value}"
    if isinstance(value, float):
        return f"f{value!r}"
    if isinstance(value, str):
        return f"s{value}"
    if value is None:
        return "n"
    if isinstance(value, tuple):
        return "(" + ",".join(_canonical(item) for item in value) + ")"
    return f"r{type(value).__name__}:{value!r}"


def stable_hash(value: object) -> int:
    """A process-stable 32-bit hash of an argument tuple or scalar."""
    return zlib.crc32(_canonical(value).encode("utf-8"))


def shard_of(args: object, shards: int) -> int:
    """The shard index owning ``args`` (always 0 when unsharded)."""
    if shards <= 1:
        return 0
    return stable_hash(args) % shards
