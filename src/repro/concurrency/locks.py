"""Reader-writer locks and the striped GMR-entry lock table.

Sec. 4.1's insight is that invalidation/rematerialization must not lock
the argument *objects* (that would serialize the object base behind
every maintenance transaction) but only the GMR entry being refreshed.
``StripedRWLock`` implements that: a fixed table of reader-writer locks
indexed by ``stable_hash(args) % stripes``.  Two different entries
almost always map to different stripes, so a forward query reading a
valid entry proceeds concurrently with a rematerialization of another
entry; collisions only cost spurious blocking, never correctness.

The stripe index deliberately uses the same ``stable_hash`` that routes
entries to shards and WAL schedulers — *not* the builtin ``hash``,
whose string hashing is randomized per process (PYTHONHASHSEED).  With
the builtin hash two runs of the same workload would spread the same
keys over different stripes, making contention profiles unreproducible
and stripe-assignment assertions impossible to pin in tests.

``RWLock`` is a classic condition-variable lock with writer preference
(an arriving writer blocks new readers), which keeps rematerializations
from being starved by a steady reader stream.  The locks are
deliberately *not* reentrant; the locking hierarchy in
``docs/CONCURRENCY.md`` guarantees no thread ever acquires an entry
lock while already holding one.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RWLock:
    """A reader-writer lock with writer preference.

    Any number of readers may hold the lock concurrently; a writer
    holds it exclusively.  A waiting writer blocks *new* readers so a
    continuous reader stream cannot starve maintenance.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class StripedRWLock:
    """A fixed table of :class:`RWLock` stripes keyed by hashable keys.

    The GMR-entry lock layer: keys are argument tuples of GMR rows.
    ``read(key)`` / ``write(key)`` return context managers for the
    stripe owning ``key``.  The table is shared across all GMRs of a
    manager — a cross-GMR stripe collision is harmless (two unrelated
    entries briefly serialize) and keeps the table O(stripes) instead
    of O(rows).
    """

    def __init__(self, stripes: int = 64) -> None:
        if stripes < 1:
            raise ValueError("StripedRWLock needs at least one stripe")
        self._stripes = tuple(RWLock() for _ in range(stripes))
        # Imported here, not at module scope: repro.util.interning pulls
        # in the sharding/GOM layers, which import this module back.
        from repro.util.interning import interned_hash

        self._hash = interned_hash

    def _stripe(self, key: object) -> RWLock:
        return self._stripes[self._hash(key) % len(self._stripes)]

    def read(self, key: object):
        """Context manager holding the read side of ``key``'s stripe."""
        return self._stripes[self._hash(key) % len(self._stripes)].read()

    def write(self, key: object):
        """Context manager holding the write side of ``key``'s stripe."""
        return self._stripes[self._hash(key) % len(self._stripes)].write()

    def __len__(self) -> int:
        return len(self._stripes)
