"""Background draining of the DEFERRED revalidation queue.

The paper runs rematerialization in separate low-priority transactions
(Sec. 4.1) so an update returns after *marking* stale entries and the
freshness work proceeds off the critical path.  The single-threaded
reproduction approximates that with the DEFERRED strategy — queue on
invalidate, drain on demand — but the drain still runs on the caller's
thread.  :class:`RevalidationWorkerPool` finishes the decoupling: N
daemon threads wait on the scheduler's ready signal and drain it in
small batches under the object base's update lock, so foreground
readers (which only take GMR-entry read locks) keep flowing while
maintenance catches up.

Shutdown/consistency protocol: :meth:`quiesce` wakes the workers and
blocks until the queue is empty and no drain is in flight — the point
at which the Def. 3.2 oracle and checkpointing are meaningful.
"""

from __future__ import annotations

import threading
import warnings
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.manager import GMRManager


class RevalidationWorkerPool:
    """Daemon threads that drain a manager's revalidation scheduler.

    Workers sleep on a condition variable; ``notify()`` (wired to the
    scheduler's ``on_ready`` hook) wakes them when an entry is queued,
    and a short timed wait re-checks for delayed retries becoming due.
    Each drain claims the object base's update lock, so a batch of
    rematerializations is serialized against foreground updates exactly
    like a synchronous ``revalidate()`` call — only the *thread* doing
    the work changes.
    """

    def __init__(
        self,
        manager: "GMRManager",
        workers: int,
        *,
        batch: int = 8,
        poll_interval: float = 0.05,
    ) -> None:
        if workers < 1:
            raise ValueError("RevalidationWorkerPool needs workers >= 1")
        self._manager = manager
        self._scheduler = manager.scheduler
        self._schedulers = manager.schedulers
        self._db_lock = manager._maint_lock
        self._shard_locks = manager._shard_locks
        self.workers = workers
        self._batch = batch
        self._poll_interval = poll_interval
        self._cond = threading.Condition()
        self._stopping = False
        self._active = 0
        self._threads: list[threading.Thread] = []
        registry = manager.metrics
        self._g_workers = registry.gauge("pool.workers")
        self._g_active = registry.gauge("pool.active")
        self._c_drained = registry.counter("pool.drained")

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            return
        self._stopping = False
        for scheduler in self._schedulers:
            scheduler.on_ready = self.notify
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._run,
                name=f"repro-reval-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        self._g_workers.set(self.workers)

    def stop(self, timeout: float = 5.0) -> bool:
        """Signal the workers to exit and join them.

        Returns True once every worker has confirmed exit.  A worker
        stuck behind a long-held update lock (e.g. a large batch scope
        on another thread) can outlive the join timeout; such
        stragglers are kept in ``_threads`` so a later ``stop()`` can
        re-join them, and False is returned so callers (``db.close()``)
        know not to tear down resources — the WAL in particular — that
        a late drain could still touch.
        """
        for scheduler in self._schedulers:
            if scheduler.on_ready is self.notify:
                scheduler.on_ready = None
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        stragglers: list[threading.Thread] = []
        for thread in self._threads:
            thread.join(timeout)
            if thread.is_alive():
                stragglers.append(thread)
        self._threads = stragglers
        if stragglers:
            warnings.warn(
                f"{len(stragglers)} revalidation worker(s) did not exit "
                f"within {timeout}s (likely blocked on the update lock); "
                "call stop() again once the lock is released",
                RuntimeWarning,
                stacklevel=2,
            )
            return False
        self._g_workers.set(0)
        return True

    def notify(self) -> None:
        """Wake the workers (scheduler ``on_ready`` hook)."""
        with self._cond:
            self._cond.notify_all()

    # -- the worker loop -------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._stopping and (
                    self._paused() or self._ready_total() == 0
                ):
                    # While storage health pauses drains, queued entries
                    # stay put; the timed wait re-checks for a re-arm.
                    self._cond.wait(self._poll_interval)
                if self._stopping:
                    return
                self._active += 1
            try:
                self._g_active.set(self._active)
                drained = self._drain_once()
                if drained:
                    self._c_drained.inc(drained)
            finally:
                with self._cond:
                    self._active -= 1
                    # A quiescer may be waiting on "queue empty and no
                    # drain in flight"; let it re-check.
                    self._cond.notify_all()
                self._g_active.set(self._active)

    def _ready_total(self) -> int:
        """Runnable entries across every shard's scheduler."""
        return sum(s.ready_pending() for s in self._schedulers)

    def _paused(self) -> bool:
        """True while degraded storage health pauses background drains.

        A rematerialization that cannot log its revalidation must not
        commit (see :mod:`repro.core.health`); the scheduler enforces
        the same rule inside ``revalidate``, this check just keeps the
        workers from spinning hot against a queue they may not touch.
        """
        return self._manager._db.health.read_only

    def _unsettled_total(self) -> int:
        """Runnable entries plus transient (epoch-conflict) defers still
        ripening — what :meth:`quiesce` must wait out.  Retry backoff
        and quarantine parking are excluded, as ever."""
        return sum(s.unsettled_pending() for s in self._schedulers)

    def _drain_once(self) -> int:
        """Drain up to one batch of ready entries.

        Unsharded, a batch runs under the object base's update lock —
        identical to a synchronous ``revalidate()``.  Sharded, the
        update lock is *not* taken: each entry is drained under its own
        shard's lock (one entry per lock hold, so foreground updates
        and quiescers are never stalled behind a whole batch) and the
        manager's write-epoch protocol discards any result that raced a
        concurrent update.
        """
        if self._shard_locks is None:
            with self._db_lock:
                return self._scheduler.revalidate(max_entries=self._batch)
        drained = 0
        budget = self._batch
        for shard, scheduler in enumerate(self._schedulers):
            while budget > 0 and scheduler.ready_pending():
                with self._shard_locks[shard]:
                    done = scheduler.revalidate(max_entries=1)
                if not done:
                    break
                drained += done
                budget -= done
            if budget <= 0:
                break
        return drained

    # -- synchronization -------------------------------------------------------

    def idle(self) -> bool:
        """True when nothing is queued, due, being drained, or parked
        in a transient epoch-conflict defer (those ripen within
        milliseconds and must not be mistaken for convergence — a
        conflicted entry is still INVALID)."""
        with self._cond:
            return self._active == 0 and self._unsettled_total() == 0

    def quiesce(self, timeout: float = 30.0) -> bool:
        """Block until the queue has fully drained (or ``timeout``).

        Returns True on convergence.  Entries parked in the delayed
        retry heap (backoff not yet elapsed) do not count as pending —
        quiescence means "nothing runnable now", matching what a
        synchronous ``scheduler.revalidate()`` would have processed.

        If the calling thread already holds the update lock (e.g.
        quiescing inside a ``db.batch()`` scope or an update listener)
        the workers can never acquire it, so waiting on the pool would
        spin until timeout; that case is detected and the queue is
        drained synchronously on the calling thread instead (the lock
        is reentrant).
        """
        import time

        if self._shard_locks is None and self._holds_db_lock():
            scheduler = self._scheduler
            while scheduler.ready_pending():
                drained = scheduler.revalidate(max_entries=self._batch)
                if drained:
                    self._c_drained.inc(drained)
                else:  # pragma: no cover - defensive against a stuck queue
                    break
            # Workers that already claimed ``_active`` are blocked on
            # the lock we hold: they cannot be mid-mutation, and will
            # wake to an empty queue, so this *is* quiescence.
            return self._scheduler.ready_pending() == 0
        if self._shard_locks is not None and self._holds_db_lock():
            # Sharded drains never take the update lock, so workers
            # keep making progress even while the caller holds it; but
            # drain synchronously too (shard locks are reentrant) so a
            # quiesce inside a ``db.batch()`` scope converges without
            # waiting on worker wakeups.
            for shard, scheduler in enumerate(self._schedulers):
                while scheduler.ready_pending():
                    with self._shard_locks[shard]:
                        drained = scheduler.revalidate(max_entries=self._batch)
                    if drained:
                        self._c_drained.inc(drained)
                    else:  # pragma: no cover - stuck/deferred entries
                        break
        deadline = time.monotonic() + timeout
        with self._cond:
            self._cond.notify_all()
        while True:
            if self.idle():
                return True
            if time.monotonic() >= deadline:
                return False
            with self._cond:
                self._cond.notify_all()
                self._cond.wait(0.005)

    def _holds_db_lock(self) -> bool:
        """True when the calling thread owns the object base's update
        lock (CPython RLock ``_is_owned``; conservatively False when
        the probe is unavailable)."""
        is_owned = getattr(self._db_lock, "_is_owned", None)
        if is_owned is None:  # pragma: no cover - non-CPython fallback
            return False
        try:
            return bool(is_owned())
        except Exception:  # pragma: no cover - defensive
            return False

    def __enter__(self) -> "RevalidationWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
