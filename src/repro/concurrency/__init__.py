"""Concurrency primitives for a thread-safe object base (Sec. 4.1).

The paper decouples rematerialization from the triggering update by
running it in separate low-priority transactions and by locking the
*GMR entry* rather than the objects it derives from.  This package
supplies the reproduction's equivalents:

``RWLock`` / ``StripedRWLock``
    A writer-preference reader-writer lock and a striped table of them
    keyed by GMR-entry argument tuples — the "lock the GMR entry, not
    the objects" layer.  Readers of a valid entry never block behind a
    rematerialization of a *different* entry.

``RevalidationWorkerPool``
    Background daemon threads that drain the DEFERRED
    ``RevalidationScheduler`` off the caller's thread, so updates
    return after marking and queueing while freshness is restored
    concurrently.

Everything here is inert unless ``MaterializationConfig(workers=N)``
with ``N > 0`` is passed to ``ObjectBase``; ``workers=0`` (the
default) keeps the single-threaded code paths bit-for-bit unchanged.
See ``docs/CONCURRENCY.md`` for the locking hierarchy.
"""

from repro.concurrency.locks import RWLock, StripedRWLock
from repro.concurrency.pool import RevalidationWorkerPool

__all__ = ["RWLock", "StripedRWLock", "RevalidationWorkerPool"]
